//! Iterative traffic engineering: minimize maximum link utilization by
//! re-weighting ECMP splits.
//!
//! Real ISPs do not route on hop counts alone — they tune IGP weights
//! until no link runs too close to its provisioned capacity. This
//! module is that loop over the batched engine: route under the current
//! weights ([`crate::traffic::link_loads_weighted`]), find the links
//! whose utilization sits near the maximum, multiply their weights by a
//! penalty < 1 (shifting flow onto parallel shortest paths without
//! changing any path length), re-route, and **keep the new weights only
//! if the maximum utilization strictly decreased**. That accept-only-
//! if-better rule makes the utilization trajectory provably monotone
//! non-increasing and guarantees termination: the loop stops at the
//! first non-improving candidate (a fixed point of the penalty map) or
//! after [`TeConfig::max_rounds`] accepted rounds.
//!
//! Everything is a deterministic function of (graph, demand,
//! capacities, config): the engine is bit-identical at any thread
//! count, comparisons are exact, and the default dyadic penalty (0.5)
//! keeps every weight an exact power of two.

use crate::demand::OdDemand;
use crate::traffic::{link_loads_weighted, TrafficLoads};
use hot_graph::csr::CsrGraph;

/// Parameters of the TE weight-tuning loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TeConfig {
    /// Links with utilization ≥ `hot_fraction × current max` are
    /// penalized together each round (in `(0, 1]`; the argmax link is
    /// always included).
    pub hot_fraction: f64,
    /// Multiplicative weight penalty applied to hot links (in
    /// `(0, 1)`). The default 0.5 is dyadic, so weights stay exact
    /// powers of two.
    pub penalty: f64,
    /// Maximum number of *accepted* improvement rounds.
    pub max_rounds: usize,
}

impl Default for TeConfig {
    fn default() -> Self {
        TeConfig {
            hot_fraction: 0.9,
            penalty: 0.5,
            max_rounds: 8,
        }
    }
}

/// Result of [`tune_weights`].
#[derive(Clone, Debug, PartialEq)]
pub struct TeOutcome {
    /// The accepted link weights (all 1.0 when no round improved).
    pub weights: Vec<f64>,
    /// Loads under the accepted weights.
    pub loads: TrafficLoads,
    /// Accepted max-utilization trajectory: entry 0 is the unweighted
    /// baseline, each later entry is strictly below its predecessor.
    pub trajectory: Vec<f64>,
    /// Candidate rounds evaluated (accepted or not).
    pub rounds_tried: usize,
    /// `true` when the loop stopped at a fixed point (a non-improving
    /// candidate, or nothing loaded), `false` when it ran out of
    /// rounds while still improving.
    pub converged: bool,
}

impl TeOutcome {
    /// Baseline (round-0, unit-weight) maximum utilization.
    pub fn initial_max_util(&self) -> f64 {
        self.trajectory[0]
    }

    /// Maximum utilization under the accepted weights.
    pub fn final_max_util(&self) -> f64 {
        *self.trajectory.last().expect("trajectory never empty")
    }
}

/// Maximum of `loads[e] / capacities[e]` (0 when there are no links).
/// Capacities must be positive.
pub fn max_utilization(loads: &[f64], capacities: &[f64]) -> f64 {
    assert_eq!(
        loads.len(),
        capacities.len(),
        "loads/capacities length mismatch"
    );
    loads
        .iter()
        .zip(capacities)
        .map(|(&l, &c)| {
            assert!(c > 0.0, "capacities must be positive");
            l / c
        })
        .fold(0.0, f64::max)
}

/// Runs the TE loop over `demand` on `csr` with the given per-link
/// `capacities`. See the module docs for the algorithm; the returned
/// [`TeOutcome::trajectory`] is monotone (strictly) decreasing after
/// its first entry, and the whole result is bit-identical at any
/// `threads`.
pub fn tune_weights(
    csr: &CsrGraph,
    demand: &dyn OdDemand,
    capacities: &[f64],
    cfg: &TeConfig,
    threads: usize,
) -> TeOutcome {
    assert_eq!(
        capacities.len(),
        csr.edge_count(),
        "one capacity per link required"
    );
    assert!(
        cfg.hot_fraction > 0.0 && cfg.hot_fraction <= 1.0,
        "hot_fraction must be in (0, 1], got {}",
        cfg.hot_fraction
    );
    assert!(
        cfg.penalty > 0.0 && cfg.penalty < 1.0,
        "penalty must be in (0, 1), got {}",
        cfg.penalty
    );
    let mut weights = vec![1.0; csr.edge_count()];
    let mut loads = link_loads_weighted(csr, demand, &weights, threads);
    let mut best_max = max_utilization(&loads.link_load, capacities);
    let mut trajectory = vec![best_max];
    let mut rounds_tried = 0;
    let mut converged = false;
    while trajectory.len() <= cfg.max_rounds {
        if best_max <= 0.0 {
            converged = true;
            break;
        }
        let cut = cfg.hot_fraction * best_max;
        let mut candidate = weights.clone();
        for (e, w) in candidate.iter_mut().enumerate() {
            if loads.link_load[e] / capacities[e] >= cut {
                *w *= cfg.penalty;
            }
        }
        rounds_tried += 1;
        let cand_loads = link_loads_weighted(csr, demand, &candidate, threads);
        let cand_max = max_utilization(&cand_loads.link_load, capacities);
        if cand_max < best_max {
            weights = candidate;
            loads = cand_loads;
            best_max = cand_max;
            trajectory.push(best_max);
        } else {
            // Fixed point of the penalty map: re-penalizing the hot set
            // no longer helps.
            converged = true;
            break;
        }
    }
    TeOutcome {
        weights,
        loads,
        trajectory,
        rounds_tried,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::RoutePolicy;
    use hot_graph::graph::Graph;

    /// Explicit dense demand (tests only).
    struct Dense {
        n: usize,
        d: Vec<f64>,
    }

    impl OdDemand for Dense {
        fn node_count(&self) -> usize {
            self.n
        }
        fn demand(&self, src: usize, dst: usize) -> f64 {
            self.d[src * self.n + dst]
        }
    }

    /// Square with a thin path and a fat path: ECMP overloads the thin
    /// side, and the TE loop must shift traffic off it.
    fn unbalanced_square() -> (CsrGraph, Vec<f64>, Dense) {
        let g: Graph<(), ()> =
            Graph::from_edges(4, vec![(0, 1, ()), (0, 2, ()), (1, 3, ()), (2, 3, ())]);
        let csr = CsrGraph::from_graph(&g);
        // Edges 0, 2 form the thin path; 1, 3 the fat one.
        let caps = vec![1.0, 10.0, 1.0, 10.0];
        let mut d = vec![0.0; 16];
        d[3] = 2.0; // 0 -> 3
        (csr, caps, Dense { n: 4, d })
    }

    #[test]
    fn te_reduces_max_utilization_monotonically() {
        let (csr, caps, dem) = unbalanced_square();
        let out = tune_weights(&csr, &dem, &caps, &TeConfig::default(), 2);
        // ECMP baseline: 1.0 on every edge, so the thin links sit at
        // utilization 1.0.
        assert_eq!(out.initial_max_util(), 1.0);
        assert!(out.final_max_util() < 1.0, "TE must improve the square");
        for pair in out.trajectory.windows(2) {
            assert!(pair[1] < pair[0], "strictly decreasing trajectory");
        }
        assert!(out.rounds_tried >= out.trajectory.len() - 1);
        // The thin links were de-weighted, the fat ones untouched.
        assert!(out.weights[0] < 1.0 && out.weights[2] < 1.0);
        assert_eq!(out.weights[1], 1.0);
    }

    #[test]
    fn te_is_thread_invariant_bitwise() {
        let (csr, caps, dem) = unbalanced_square();
        let one = tune_weights(&csr, &dem, &caps, &TeConfig::default(), 1);
        for threads in [2, 4, 8] {
            let got = tune_weights(&csr, &dem, &caps, &TeConfig::default(), threads);
            assert_eq!(one, got, "{} threads", threads);
        }
    }

    #[test]
    fn te_idle_network_converges_immediately() {
        let (csr, caps, _) = unbalanced_square();
        let dem = Dense {
            n: 4,
            d: vec![0.0; 16],
        };
        let out = tune_weights(&csr, &dem, &caps, &TeConfig::default(), 1);
        assert!(out.converged);
        assert_eq!(out.rounds_tried, 0);
        assert_eq!(out.trajectory, vec![0.0]);
        assert!(out.weights.iter().all(|&w| w == 1.0));
    }

    #[test]
    fn te_balanced_square_is_already_optimal() {
        // Equal capacities: ECMP already balances the square perfectly,
        // so the first candidate cannot improve and weights stay 1.
        let (csr, _, dem) = unbalanced_square();
        let caps = vec![10.0; 4];
        let out = tune_weights(&csr, &dem, &caps, &TeConfig::default(), 1);
        assert!(out.converged);
        assert_eq!(out.trajectory.len(), 1);
        assert!(out.weights.iter().all(|&w| w == 1.0));
        // And the accepted loads are exactly the unit-weight ECMP run.
        let plain = crate::traffic::link_loads(&csr, &dem, RoutePolicy::Ecmp, 1);
        assert_eq!(out.loads, plain);
    }

    #[test]
    fn max_utilization_basics() {
        assert_eq!(max_utilization(&[], &[]), 0.0);
        assert_eq!(max_utilization(&[5.0, 1.0], &[10.0, 1.0]), 1.0);
    }
}
