//! Streaming probe-campaign engine: traceroute inference at scale.
//!
//! [`crate::traceroute::infer_map`] states the measurement model — from
//! each vantage, the forwarding path to each destination is observed and
//! the inferred map is the union of observed links — but it runs one
//! allocating Dijkstra per vantage over the mutable [`Graph`] and walks
//! a materialized `Vec<EdgeId>` per destination, which caps campaigns at
//! toy sizes. This module is the batch engine behind scenario E19: the
//! same observation model over a [`CsrGraph`], with
//!
//! - **per-worker scratch** (a reused [`CsrBfsTree`] or Dijkstra state
//!   with O(reached) reset) so a vantage costs one tree build and zero
//!   per-probe allocation;
//! - **O(reached) marking**: with all-destinations campaigns the
//!   observed links from a vantage are exactly the tree's parent edges,
//!   so masks are stamped straight off the visit order without ever
//!   materializing a path; destination subsets walk parent chains with
//!   an epoch-stamped early stop, so shared path prefixes are walked
//!   once per vantage;
//! - the fixed 64-chunk deterministic scheduler
//!   ([`hot_graph::parallel::run_chunks`]) fanning vantages out, with
//!   bitset partials OR-merged in chunk order — inferred maps and probe
//!   statistics are **bit-identical at any thread count**;
//! - two forwarding modes: hop-count trees (unit-cost BFS, the mesh
//!   controls) and **latency forwarding** over a per-link latency slice
//!   (for generated topologies, the `hot-geo` link lengths), whose
//!   Dijkstra replicates [`hot_graph::shortest_path::dijkstra`]'s heap
//!   semantics operation-for-operation, so the inferred masks equal
//!   `infer_map`'s bit for bit (property-tested).
//!
//! Out-of-range vantage or destination ids are skipped, matching the
//! hardened `infer_map` and the routing/BGP query conventions.

use crate::traceroute::InferredMap;
use hot_graph::csr::{CsrBfsTree, CsrGraph, UNREACHABLE};
use hot_graph::graph::{EdgeId, Graph, NodeId};
use hot_graph::parallel::run_chunks;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A probe campaign: who probes, toward what, under which forwarding
/// metric.
#[derive(Clone, Copy, Debug)]
pub struct ProbeCampaign<'a> {
    /// Vantage (source) routers. Out-of-range ids are skipped; repeats
    /// are allowed (idempotent on the masks).
    pub vantages: &'a [NodeId],
    /// Probe targets: every node when `None`, else the given subset
    /// (out-of-range ids skipped, like a probe to an unrouted prefix).
    pub destinations: Option<&'a [NodeId]>,
    /// Per-link latency (typically the `hot-geo` link length), indexed
    /// by edge id. `Some` selects weighted (latency) forwarding;
    /// `None` selects hop-count forwarding. Entries must be finite and
    /// non-negative.
    pub link_latency: Option<&'a [f64]>,
}

/// Aggregate statistics of a campaign. All fields are exact integers or
/// chunk-ordered f64 sums, so they are bit-identical at any thread
/// count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProbeStats {
    /// Probes fired: one per (in-range vantage, in-range destination)
    /// pair, self-probes included.
    pub probes_sent: u64,
    /// Probes whose destination was reachable (the self-probe always
    /// completes).
    pub probes_completed: u64,
    /// Total forwarding hops over completed probes.
    pub total_hops: u64,
    /// Longest completed probe, in hops.
    pub max_hops: u32,
    /// Total accumulated latency over completed probes (zero under
    /// hop-count forwarding).
    pub total_latency: f64,
    /// Largest completed-probe latency.
    pub max_latency: f64,
}

impl ProbeStats {
    /// Mean hop count of completed probes (0 when none completed).
    pub fn mean_hops(&self) -> f64 {
        if self.probes_completed == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.probes_completed as f64
        }
    }

    /// Mean latency of completed probes (0 when none completed).
    pub fn mean_latency(&self) -> f64 {
        if self.probes_completed == 0 {
            0.0
        } else {
            self.total_latency / self.probes_completed as f64
        }
    }

    fn absorb(&mut self, o: &ProbeStats) {
        self.probes_sent += o.probes_sent;
        self.probes_completed += o.probes_completed;
        self.total_hops += o.total_hops;
        self.max_hops = self.max_hops.max(o.max_hops);
        self.total_latency += o.total_latency;
        self.max_latency = self.max_latency.max(o.max_latency);
    }
}

/// The outcome of a campaign: the inferred map plus probe statistics.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The inferred (sampled) map, in ground-truth indexing — the same
    /// structure `infer_map` returns, bit-identical to it under the
    /// same campaign.
    pub map: InferredMap,
    /// Aggregate probe statistics.
    pub stats: ProbeStats,
}

/// One [`HeapEntry`] of the latency Dijkstra. This mirrors the private
/// entry in `hot_graph::shortest_path` exactly — comparison on `dist`
/// alone, reversed for a min-heap — because mask equality with
/// `infer_map` requires the *same* heap pop order among equal
/// distances, not just the same distances.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("NaN distance in probe Dijkstra heap")
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable single-source Dijkstra state over a CSR view: settle-order
/// reset (O(reached) per vantage), flat parent arrays, and a hop-depth
/// array filled in settle order — valid because a node's final parent
/// is always settled before the node itself.
struct DijkstraScratch {
    dist: Vec<f64>,
    depth: Vec<u32>,
    parent_node: Vec<NodeId>,
    parent_edge: Vec<EdgeId>,
    done: Vec<bool>,
    /// Settle order of the last run; exactly the reachable nodes,
    /// source first.
    order: Vec<u32>,
    heap: BinaryHeap<HeapEntry>,
}

impl DijkstraScratch {
    fn sized(n: usize) -> DijkstraScratch {
        DijkstraScratch {
            dist: vec![f64::INFINITY; n],
            depth: vec![0; n],
            parent_node: vec![NodeId(u32::MAX); n],
            parent_edge: vec![EdgeId(u32::MAX); n],
            done: vec![false; n],
            order: Vec::with_capacity(n),
            heap: BinaryHeap::new(),
        }
    }

    /// Runs Dijkstra from `source`. The loop body replicates
    /// `hot_graph::shortest_path::dijkstra` operation for operation
    /// (same relaxation condition, same push order via the CSR's
    /// preserved adjacency order, same `d + w` arithmetic), so the
    /// parent forest — and every mask derived from it — matches the
    /// classic implementation bit for bit.
    fn run(&mut self, csr: &CsrGraph, latency: &[f64], source: NodeId) {
        for &v in &self.order {
            self.dist[v as usize] = f64::INFINITY;
            self.done[v as usize] = false;
        }
        self.order.clear();
        debug_assert!(self.heap.is_empty());
        let offsets = csr.offsets();
        let targets = csr.targets();
        let edge_ids = csr.edge_ids_raw();
        self.dist[source.index()] = 0.0;
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapEntry { dist: d, node: v }) = self.heap.pop() {
            if self.done[v.index()] {
                continue;
            }
            self.done[v.index()] = true;
            self.order.push(v.0);
            let lo = offsets[v.index()] as usize;
            let hi = offsets[v.index() + 1] as usize;
            for i in lo..hi {
                let u = targets[i];
                let nd = d + latency[edge_ids[i].index()];
                if nd < self.dist[u.index()] {
                    self.dist[u.index()] = nd;
                    self.parent_node[u.index()] = v;
                    self.parent_edge[u.index()] = edge_ids[i];
                    self.heap.push(HeapEntry { dist: nd, node: u });
                }
            }
        }
        // Hop depths in settle order: a node's (final) parent was
        // settled strictly earlier, so its depth is already in place.
        self.depth[source.index()] = 0;
        for &v in &self.order[1..] {
            let v = v as usize;
            self.depth[v] = self.depth[self.parent_node[v].index()] + 1;
        }
    }
}

/// Per-worker forwarding state: one tree (or Dijkstra state) reused
/// across every vantage the worker processes.
enum Forwarding {
    Hops(CsrBfsTree),
    Latency(DijkstraScratch),
}

struct WorkerScratch {
    fwd: Forwarding,
    /// Epoch stamps for destination-subset chain walks: `stamp[v] ==
    /// epoch` means `v`'s chain suffix is already marked for the
    /// current vantage.
    stamp: Vec<u32>,
    epoch: u32,
}

/// One chunk's partial result: observed-node/edge bitsets plus stats.
/// Bitsets keep the 64 in-flight partials small (n/8 bytes each) and
/// make the chunk-ordered merge a word-wise OR.
struct Partial {
    node_words: Vec<u64>,
    edge_words: Vec<u64>,
    stats: ProbeStats,
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1u64 << (i & 63);
}

#[inline]
fn get_bit(words: &[u64], i: usize) -> bool {
    words[i >> 6] & (1u64 << (i & 63)) != 0
}

/// Runs `campaign` over `csr` on `threads` workers and returns the
/// inferred map plus probe statistics. Deterministic: the result is a
/// pure function of `(csr, campaign)` — the thread count only shapes
/// wall-clock.
///
/// # Panics
///
/// Panics if `campaign.link_latency` is present with the wrong length
/// or with a non-finite / negative entry.
pub fn run_campaign(csr: &CsrGraph, campaign: &ProbeCampaign, threads: usize) -> CampaignResult {
    let n = csr.node_count();
    let m = csr.edge_count();
    if let Some(lat) = campaign.link_latency {
        assert_eq!(lat.len(), m, "one latency per link");
        assert!(
            lat.iter().all(|l| l.is_finite() && *l >= 0.0),
            "link latencies must be finite and non-negative"
        );
    }
    let node_words_len = n.div_ceil(64).max(1);
    let edge_words_len = m.div_ceil(64).max(1);
    let parts = run_chunks(
        campaign.vantages.len(),
        threads,
        || WorkerScratch {
            fwd: match campaign.link_latency {
                Some(_) => Forwarding::Latency(DijkstraScratch::sized(n)),
                None => Forwarding::Hops(CsrBfsTree::sized(n)),
            },
            stamp: vec![0; n],
            epoch: 0,
        },
        |scratch, range| {
            let mut part = Partial {
                node_words: vec![0; node_words_len],
                edge_words: vec![0; edge_words_len],
                stats: ProbeStats::default(),
            };
            for i in range {
                let v = campaign.vantages[i];
                if v.index() >= n {
                    continue; // unrouted vantage, like infer_map/route()
                }
                if campaign.destinations.is_some() {
                    advance_epoch(scratch);
                }
                let WorkerScratch { fwd, stamp, epoch } = scratch;
                match fwd {
                    Forwarding::Hops(tree) => {
                        csr.bfs_tree_into(v, tree);
                        match campaign.destinations {
                            None => mark_full_tree_hops(tree, &mut part),
                            Some(ds) => mark_subset_hops(tree, ds, stamp, *epoch, &mut part),
                        }
                    }
                    Forwarding::Latency(dj) => {
                        dj.run(csr, campaign.link_latency.expect("latency mode"), v);
                        match campaign.destinations {
                            None => mark_full_tree_latency(dj, &mut part),
                            Some(ds) => mark_subset_latency(dj, ds, stamp, *epoch, &mut part),
                        }
                    }
                }
            }
            part
        },
    );
    let mut node_words = vec![0u64; node_words_len];
    let mut edge_words = vec![0u64; edge_words_len];
    let mut stats = ProbeStats::default();
    for (_, part) in &parts {
        for (acc, w) in node_words.iter_mut().zip(&part.node_words) {
            *acc |= w;
        }
        for (acc, w) in edge_words.iter_mut().zip(&part.edge_words) {
            *acc |= w;
        }
        stats.absorb(&part.stats);
    }
    let node_seen: Vec<bool> = (0..n).map(|i| get_bit(&node_words, i)).collect();
    let edge_seen: Vec<bool> = (0..m).map(|i| get_bit(&edge_words, i)).collect();
    let nodes_obs = node_seen.iter().filter(|&&s| s).count();
    let edges_obs = edge_seen.iter().filter(|&&s| s).count();
    CampaignResult {
        map: InferredMap {
            node_coverage: if n > 0 {
                nodes_obs as f64 / n as f64
            } else {
                0.0
            },
            edge_coverage: if m > 0 {
                edges_obs as f64 / m as f64
            } else {
                0.0
            },
            node_seen,
            edge_seen,
        },
        stats,
    }
}

/// Convenience wrapper: builds the CSR view of `truth`, gathers per-edge
/// latencies with `weight`, and runs the batched campaign — the drop-in
/// replacement for [`crate::traceroute::infer_map`] (bit-identical
/// masks), plus stats.
pub fn infer_map_batched<N, E>(
    truth: &Graph<N, E>,
    vantages: &[NodeId],
    destinations: Option<&[NodeId]>,
    mut weight: impl FnMut(&E) -> f64,
    threads: usize,
) -> CampaignResult {
    let csr = CsrGraph::from_graph(truth);
    let latency: Vec<f64> = truth
        .edge_ids()
        .map(|e| weight(truth.edge_weight(e)))
        .collect();
    run_campaign(
        &csr,
        &ProbeCampaign {
            vantages,
            destinations,
            link_latency: Some(&latency),
        },
        threads,
    )
}

fn advance_epoch(scratch: &mut WorkerScratch) {
    if scratch.epoch == u32::MAX {
        scratch.stamp.fill(0);
        scratch.epoch = 1;
    } else {
        scratch.epoch += 1;
    }
}

/// All-destinations campaign under hop forwarding: every reached
/// non-source node contributes itself and its parent edge; one probe
/// per node of the graph was sent.
fn mark_full_tree_hops(tree: &CsrBfsTree, part: &mut Partial) {
    let order = tree.visit_order();
    let parents = tree.parent_edges();
    part.stats.probes_sent += tree.dist.len() as u64;
    part.stats.probes_completed += order.len() as u64;
    set_bit(&mut part.node_words, tree.source.index());
    for &u in &order[1..] {
        let d = tree.dist[u.index()];
        set_bit(&mut part.node_words, u.index());
        set_bit(&mut part.edge_words, parents[u.index()].index());
        part.stats.total_hops += d as u64;
        part.stats.max_hops = part.stats.max_hops.max(d);
    }
}

/// All-destinations campaign under latency forwarding: same shape as
/// the hop variant, off the Dijkstra settle order.
fn mark_full_tree_latency(dj: &DijkstraScratch, part: &mut Partial) {
    part.stats.probes_sent += dj.dist.len() as u64;
    part.stats.probes_completed += dj.order.len() as u64;
    if let Some(&src) = dj.order.first() {
        set_bit(&mut part.node_words, src as usize);
    }
    for &u in &dj.order[1..] {
        let u = u as usize;
        set_bit(&mut part.node_words, u);
        set_bit(&mut part.edge_words, dj.parent_edge[u].index());
        part.stats.total_hops += dj.depth[u] as u64;
        part.stats.max_hops = part.stats.max_hops.max(dj.depth[u]);
        part.stats.total_latency += dj.dist[u];
        part.stats.max_latency = part.stats.max_latency.max(dj.dist[u]);
    }
}

/// Destination-subset campaign under hop forwarding: walk each
/// destination's parent chain toward the source, stopping at the first
/// node already stamped for this vantage (its suffix is marked).
fn mark_subset_hops(
    tree: &CsrBfsTree,
    dests: &[NodeId],
    stamp: &mut [u32],
    epoch: u32,
    part: &mut Partial,
) {
    let n = tree.dist.len();
    let parents_n = tree.parent_nodes();
    let parents_e = tree.parent_edges();
    // The vantage observes itself even when every probe times out
    // (`infer_map` sets the source bit before probing anything).
    set_bit(&mut part.node_words, tree.source.index());
    for &dst in dests {
        if dst.index() >= n {
            continue; // unrouted prefix, like infer_map
        }
        part.stats.probes_sent += 1;
        let d = tree.dist[dst.index()];
        if d == UNREACHABLE {
            continue; // probe timed out
        }
        part.stats.probes_completed += 1;
        part.stats.total_hops += d as u64;
        part.stats.max_hops = part.stats.max_hops.max(d);
        let mut cur = dst;
        while cur != tree.source && stamp[cur.index()] != epoch {
            stamp[cur.index()] = epoch;
            set_bit(&mut part.node_words, cur.index());
            set_bit(&mut part.edge_words, parents_e[cur.index()].index());
            cur = parents_n[cur.index()];
        }
    }
}

/// Destination-subset campaign under latency forwarding.
fn mark_subset_latency(
    dj: &DijkstraScratch,
    dests: &[NodeId],
    stamp: &mut [u32],
    epoch: u32,
    part: &mut Partial,
) {
    let n = dj.dist.len();
    let source = match dj.order.first() {
        Some(&s) => NodeId(s),
        None => return,
    };
    // The vantage observes itself even when every probe times out
    // (`infer_map` sets the source bit before probing anything).
    set_bit(&mut part.node_words, source.index());
    for &dst in dests {
        if dst.index() >= n {
            continue;
        }
        part.stats.probes_sent += 1;
        if !dj.done[dst.index()] {
            continue;
        }
        part.stats.probes_completed += 1;
        part.stats.total_hops += dj.depth[dst.index()] as u64;
        part.stats.max_hops = part.stats.max_hops.max(dj.depth[dst.index()]);
        part.stats.total_latency += dj.dist[dst.index()];
        part.stats.max_latency = part.stats.max_latency.max(dj.dist[dst.index()]);
        let mut cur = dst;
        while cur != source && stamp[cur.index()] != epoch {
            stamp[cur.index()] = epoch;
            set_bit(&mut part.node_words, cur.index());
            set_bit(&mut part.edge_words, dj.parent_edge[cur.index()].index());
            cur = dj.parent_node[cur.index()];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traceroute::{infer_map, strided_vantages};
    use hot_graph::graph::Graph;

    /// Square with a cheap diagonal (the traceroute.rs fixture).
    fn square_diag() -> Graph<(), f64> {
        Graph::from_edges(
            4,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (0, 2, 0.5),
            ],
        )
    }

    #[test]
    fn matches_infer_map_on_square() {
        let g = square_diag();
        for k in 1..=4 {
            let vantages = strided_vantages(&g, k);
            let classic = infer_map(&g, &vantages, None, |w| *w);
            let batched = infer_map_batched(&g, &vantages, None, |w| *w, 2);
            assert_eq!(classic.node_seen, batched.map.node_seen, "k = {}", k);
            assert_eq!(classic.edge_seen, batched.map.edge_seen, "k = {}", k);
            assert_eq!(classic.node_coverage, batched.map.node_coverage);
            assert_eq!(classic.edge_coverage, batched.map.edge_coverage);
        }
    }

    #[test]
    fn hop_mode_counts_probes() {
        let g: Graph<(), f64> = Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let csr = CsrGraph::from_graph(&g);
        let result = run_campaign(
            &csr,
            &ProbeCampaign {
                vantages: &[NodeId(0)],
                destinations: None,
                link_latency: None,
            },
            1,
        );
        // 4 probes sent (one per node), node 3 unreachable.
        assert_eq!(result.stats.probes_sent, 4);
        assert_eq!(result.stats.probes_completed, 3);
        assert_eq!(result.stats.total_hops, 3); // 0 + 1 + 2
        assert_eq!(result.stats.max_hops, 2);
        assert_eq!(result.stats.total_latency, 0.0);
        assert!((result.map.node_coverage - 0.75).abs() < 1e-12);
    }

    #[test]
    fn latency_mode_accumulates_distance() {
        let g = square_diag();
        let csr = CsrGraph::from_graph(&g);
        let latency: Vec<f64> = g.edge_ids().map(|e| *g.edge_weight(e)).collect();
        let result = run_campaign(
            &csr,
            &ProbeCampaign {
                vantages: &[NodeId(0)],
                destinations: None,
                link_latency: Some(&latency),
            },
            1,
        );
        // Distances from 0: 0, 1.0, 0.5 (diagonal), 1.0.
        assert_eq!(result.stats.probes_completed, 4);
        assert!((result.stats.total_latency - 2.5).abs() < 1e-12);
        assert!((result.stats.max_latency - 1.0).abs() < 1e-12);
        assert_eq!(result.stats.max_hops, 1);
    }

    #[test]
    fn destination_subsets_restrict_the_map() {
        let g = square_diag();
        let csr = CsrGraph::from_graph(&g);
        let latency: Vec<f64> = g.edge_ids().map(|e| *g.edge_weight(e)).collect();
        let dests = [NodeId(1), NodeId(1), NodeId(0)];
        let result = run_campaign(
            &csr,
            &ProbeCampaign {
                vantages: &[NodeId(0)],
                destinations: Some(&dests),
                link_latency: Some(&latency),
            },
            1,
        );
        let classic = infer_map(&g, &[NodeId(0)], Some(&dests), |w| *w);
        assert_eq!(result.map.node_seen, classic.node_seen);
        assert_eq!(result.map.edge_seen, classic.edge_seen);
        assert_eq!(result.stats.probes_sent, 3);
        assert_eq!(result.stats.probes_completed, 3);
        assert_eq!(result.stats.total_hops, 2); // 1 + 1 + 0
    }

    #[test]
    fn out_of_range_ids_are_skipped() {
        let g = square_diag();
        let csr = CsrGraph::from_graph(&g);
        let result = run_campaign(
            &csr,
            &ProbeCampaign {
                vantages: &[NodeId(99), NodeId(0)],
                destinations: Some(&[NodeId(1), NodeId(77)]),
                link_latency: None,
            },
            1,
        );
        assert_eq!(result.stats.probes_sent, 1, "only the routable pair");
        assert!(result.map.node_seen[0] && result.map.node_seen[1]);
        assert_eq!(result.map.edge_seen.iter().filter(|&&s| s).count(), 1);
    }

    #[test]
    fn empty_graph_and_empty_vantages() {
        let empty: Graph<(), f64> = Graph::new();
        let csr = CsrGraph::from_graph(&empty);
        let result = run_campaign(
            &csr,
            &ProbeCampaign {
                vantages: &[],
                destinations: None,
                link_latency: None,
            },
            4,
        );
        assert_eq!(result.stats, ProbeStats::default());
        assert_eq!(result.map.node_coverage, 0.0);
        let g = square_diag();
        let csr = CsrGraph::from_graph(&g);
        let none = run_campaign(
            &csr,
            &ProbeCampaign {
                vantages: &[],
                destinations: None,
                link_latency: None,
            },
            4,
        );
        assert!(none.map.node_seen.iter().all(|&s| !s));
    }

    /// The contract of the whole module: thread count never changes a
    /// bit of the output.
    #[test]
    fn thread_count_is_invisible() {
        let g = square_diag();
        let csr = CsrGraph::from_graph(&g);
        let latency: Vec<f64> = g.edge_ids().map(|e| *g.edge_weight(e)).collect();
        let vantages = strided_vantages(&g, 3);
        for link_latency in [None, Some(&latency[..])] {
            let campaign = ProbeCampaign {
                vantages: &vantages,
                destinations: None,
                link_latency,
            };
            let serial = run_campaign(&csr, &campaign, 1);
            for threads in [2, 4, 8] {
                let parallel = run_campaign(&csr, &campaign, threads);
                assert_eq!(serial.map.node_seen, parallel.map.node_seen);
                assert_eq!(serial.map.edge_seen, parallel.map.edge_seen);
                assert_eq!(serial.stats, parallel.stats);
            }
        }
    }
}
