//! # hot-sim — protocols on top of generated topologies
//!
//! The paper's abstract promises that an explanatory topology framework
//! "should provide a scientific foundation for the investigation of other
//! important problems, such as pricing, peering, or the dynamics of
//! routing protocols", and its introduction leans on Tangmunarunkit et
//! al.'s observation that topology drives protocol *performance*. This
//! crate closes that loop: it runs protocol-level computations on the
//! topologies the workspace generates.
//!
//! | module | what it simulates | paper anchor |
//! |---|---|---|
//! | [`demand`] | gravity/uniform/rank-biased OD demand matrices | §2.1 ("pipes between big cities") |
//! | [`traffic`] | batched million-flow link-load simulation, ECMP (plain + weighted) | §1 ("dramatic impact on performance") |
//! | [`te`] | iterative weight-tuning that minimizes max utilization | §2.1 capacity-constrained design |
//! | [`cascade`] | overload cascades: fail past-capacity links, re-route to a fixed point | §3.1 robustness under surges |
//! | [`routing`] | intradomain shortest-path routing, per-link load, utilization | §1 ("dramatic impact on performance") |
//! | [`failure`] | single-link failures: re-routing stretch, load redistribution | §3.1 robustness; §4 fn.7 redundancy |
//! | [`bgp`] | valley-free (Gao–Rexford) interdomain paths, policy inflation | §2.3 peering economics |
//! | [`traceroute`] | vantage-point path sampling, inferred-map bias | §1/§3.2 incomplete measured maps |
//! | [`probe`] | batched million-probe campaigns over CSR, bit-identical to [`traceroute`] | §1/§3.2 measurement at scale |

pub mod bgp;
pub mod cascade;
pub mod demand;
pub mod evolve;
pub mod failure;
pub mod probe;
pub mod routing;
pub mod te;
pub mod traceroute;
pub mod traffic;
