//! Valley-free interdomain routing (Gao–Rexford) and policy inflation.
//!
//! §2.3 of the paper frames peering as economics; the routing consequence
//! is that AS paths are not shortest paths: a route may climb
//! customer→provider links, cross at most one peer–peer link, then
//! descend provider→customer links — never providing free transit
//! ("valley-free"). The gap between valley-free and unrestricted path
//! lengths is the classic *policy inflation* measurement, and it is a
//! pure artifact of the economic relationships the generator creates.

use hot_core::peering::{Internet, Relationship};
use std::collections::VecDeque;

/// The AS-level relationship network: adjacency lists per AS, labeled.
#[derive(Clone, Debug)]
pub struct AsNetwork {
    /// `providers[a]` = ASes that sell transit *to* `a`.
    pub providers: Vec<Vec<usize>>,
    /// `customers[a]` = ASes that buy transit *from* `a`.
    pub customers: Vec<Vec<usize>>,
    /// `peers[a]` = settlement-free peers of `a`.
    pub peers: Vec<Vec<usize>>,
}

impl AsNetwork {
    /// Extracts the relationship network from a generated Internet.
    /// Duplicate peering links between a pair collapse to one adjacency.
    pub fn from_internet(net: &Internet) -> Self {
        let n = net.isps.len();
        let mut providers = vec![Vec::new(); n];
        let mut customers = vec![Vec::new(); n];
        let mut peers = vec![Vec::new(); n];
        for link in &net.peering {
            match link.relationship {
                Relationship::PeerPeer => {
                    peers[link.isp_a].push(link.isp_b);
                    peers[link.isp_b].push(link.isp_a);
                }
                Relationship::ProviderCustomer => {
                    // isp_a provides transit to isp_b.
                    customers[link.isp_a].push(link.isp_b);
                    providers[link.isp_b].push(link.isp_a);
                }
            }
        }
        // Duplicate physical links between a pair collapse via one
        // sort+dedup per adjacency — O(E log E) total, where the old
        // membership scan per insert was O(degree²) and dominated the
        // build on 100k-AS internets.
        for lists in [&mut providers, &mut customers, &mut peers] {
            for v in lists.iter_mut() {
                v.sort_unstable();
                v.dedup();
            }
        }
        AsNetwork {
            providers,
            customers,
            peers,
        }
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Whether the network has no ASes.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }

    /// Shortest **valley-free** AS-path length from `src` to every AS
    /// (`None` = unreachable under policy). A `src` outside the network
    /// — including any `src` on the empty network — reaches nothing.
    ///
    /// BFS over `(as, phase)` states with monotone phases:
    /// `0` = climbing (may take customer→provider, a peer link, or turn
    /// downhill), `1` = crossed the single allowed peer link (may only
    /// descend), `2` = descending (provider→customer only). The queue
    /// carries each state's distance, so no state is ever dequeued
    /// without one.
    pub fn valley_free_distances(&self, src: usize) -> Vec<Option<u32>> {
        let n = self.len();
        if src >= n {
            return vec![None; n];
        }
        // dist[as][phase]
        let mut dist = vec![[None::<u32>; 3]; n];
        let mut queue = VecDeque::new();
        dist[src][0] = Some(0);
        queue.push_back((src, 0usize, 0u32));
        while let Some((a, phase, d)) = queue.pop_front() {
            let relax = |b: usize,
                         new_phase: usize,
                         queue: &mut VecDeque<(usize, usize, u32)>,
                         dist: &mut Vec<[Option<u32>; 3]>| {
                if dist[b][new_phase].is_none() {
                    dist[b][new_phase] = Some(d + 1);
                    queue.push_back((b, new_phase, d + 1));
                }
            };
            match phase {
                0 => {
                    for &p in &self.providers[a] {
                        relax(p, 0, &mut queue, &mut dist);
                    }
                    for &p in &self.peers[a] {
                        relax(p, 1, &mut queue, &mut dist);
                    }
                    for &c in &self.customers[a] {
                        relax(c, 2, &mut queue, &mut dist);
                    }
                }
                _ => {
                    for &c in &self.customers[a] {
                        relax(c, 2, &mut queue, &mut dist);
                    }
                }
            }
        }
        dist.into_iter()
            .map(|per_phase| per_phase.into_iter().flatten().min())
            .collect()
    }

    /// Shortest unrestricted AS-path length from `src` (policy ignored).
    /// A `src` outside the network reaches nothing.
    pub fn shortest_distances(&self, src: usize) -> Vec<Option<u32>> {
        let n = self.len();
        if src >= n {
            return vec![None; n];
        }
        let mut dist = vec![None::<u32>; n];
        let mut queue = VecDeque::new();
        dist[src] = Some(0);
        queue.push_back((src, 0u32));
        while let Some((a, d)) = queue.pop_front() {
            for nbrs in [&self.providers[a], &self.customers[a], &self.peers[a]] {
                for &b in nbrs {
                    if dist[b].is_none() {
                        dist[b] = Some(d + 1);
                        queue.push_back((b, d + 1));
                    }
                }
            }
        }
        dist
    }
}

/// Policy-inflation statistics over all ordered AS pairs.
#[derive(Clone, Copy, Debug)]
pub struct InflationStats {
    /// Pairs reachable under policy / pairs reachable at all.
    pub policy_reachability: f64,
    /// Mean of (valley-free length / shortest length) over pairs
    /// reachable both ways.
    pub mean_inflation: f64,
    /// Fraction of those pairs whose path is strictly inflated.
    pub inflated_fraction: f64,
    /// Maximum observed inflation ratio.
    pub max_inflation: f64,
}

/// Computes inflation statistics for an AS network.
pub fn policy_inflation(net: &AsNetwork) -> InflationStats {
    let n = net.len();
    let mut reach_shortest = 0usize;
    let mut reach_policy = 0usize;
    let mut inflation_sum = 0.0;
    let mut inflated = 0usize;
    let mut compared = 0usize;
    let mut max_inflation = 1.0f64;
    for src in 0..n {
        let vf = net.valley_free_distances(src);
        let sp = net.shortest_distances(src);
        for dst in 0..n {
            if dst == src {
                continue;
            }
            if let Some(s) = sp[dst] {
                reach_shortest += 1;
                if let Some(v) = vf[dst] {
                    reach_policy += 1;
                    debug_assert!(v >= s, "policy cannot beat shortest");
                    if s > 0 {
                        let ratio = v as f64 / s as f64;
                        inflation_sum += ratio;
                        compared += 1;
                        max_inflation = max_inflation.max(ratio);
                        if v > s {
                            inflated += 1;
                        }
                    }
                }
            }
        }
    }
    InflationStats {
        policy_reachability: if reach_shortest > 0 {
            reach_policy as f64 / reach_shortest as f64
        } else {
            1.0
        },
        mean_inflation: if compared > 0 {
            inflation_sum / compared as f64
        } else {
            1.0
        },
        inflated_fraction: if compared > 0 {
            inflated as f64 / compared as f64
        } else {
            0.0
        },
        max_inflation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built network:
    ///   0 and 1 are tier-1 peers;
    ///   0 provides 2; 1 provides 3; 2 provides 4.
    fn toy() -> AsNetwork {
        let mut net = AsNetwork {
            providers: vec![Vec::new(); 5],
            customers: vec![Vec::new(); 5],
            peers: vec![Vec::new(); 5],
        };
        net.peers[0].push(1);
        net.peers[1].push(0);
        let pc = [(0usize, 2usize), (1, 3), (2, 4)];
        for (p, c) in pc {
            net.customers[p].push(c);
            net.providers[c].push(p);
        }
        net
    }

    #[test]
    fn valley_free_basic_paths() {
        let net = toy();
        let from4 = net.valley_free_distances(4);
        // 4 -> 2 -> 0 -> peer 1 -> 3: length 4, valley-free.
        assert_eq!(from4[3], Some(4));
        assert_eq!(from4[0], Some(2));
        assert_eq!(from4[4], Some(0));
    }

    #[test]
    fn no_transit_through_customers() {
        // Add a second provider 5 of customer 4... simpler: check peer
        // transit ban: make 2 and 3 peers; 4 -> 2 -> 3 is legal (one peer
        // crossing), but 0 -> 2 -> 3 would require provider->customer then
        // peer, which is a valley: after descending you cannot peer.
        let mut net = toy();
        net.peers[2].push(3);
        net.peers[3].push(2);
        let from0 = net.valley_free_distances(0);
        // 0 -> 2 (down) then 2 -> 3 (peer) is a valley: forbidden.
        // But 0 -> peer 1 -> 3 (down) is fine: length 2.
        assert_eq!(from0[3], Some(2));
        let from4 = net.valley_free_distances(4);
        // 4 -> 2 (up) -> 3 (peer) now shortens reaching 3 to 2 hops.
        assert_eq!(from4[3], Some(2));
    }

    #[test]
    fn valley_blocks_peer_to_peer_transit() {
        // Two stub customers under different tier-1s that do NOT peer:
        // 0 provides 2, 1 provides 3, no peer link. 2 cannot reach 3.
        let mut net = toy();
        net.peers[0].clear();
        net.peers[1].clear();
        let from2 = net.valley_free_distances(2);
        assert_eq!(from2[3], None, "no valley-free route should exist");
        // Unrestricted shortest path also disconnected here (0-1 edge was
        // the peer link), so remove... wait: shortest uses peers too and
        // they're cleared: also disconnected.
        assert_eq!(net.shortest_distances(2)[3], None);
    }

    #[test]
    fn inflation_on_toy() {
        let net = toy();
        let stats = policy_inflation(&net);
        // Everything reachable under policy in this tree-with-peer-top.
        assert!((stats.policy_reachability - 1.0).abs() < 1e-12);
        assert!(stats.mean_inflation >= 1.0);
        assert!(stats.max_inflation >= stats.mean_inflation);
    }

    #[test]
    fn policy_never_beats_shortest() {
        let net = toy();
        for src in 0..net.len() {
            let vf = net.valley_free_distances(src);
            let sp = net.shortest_distances(src);
            for dst in 0..net.len() {
                if let (Some(v), Some(s)) = (vf[dst], sp[dst]) {
                    assert!(v >= s);
                }
            }
        }
    }

    #[test]
    fn empty_network() {
        let net = AsNetwork {
            providers: vec![],
            customers: vec![],
            peers: vec![],
        };
        assert!(net.is_empty());
        let stats = policy_inflation(&net);
        assert_eq!(stats.mean_inflation, 1.0);
    }

    /// Regression: distance queries used to index out of bounds for a
    /// source outside the network (including any source on the empty
    /// network); now they report "reaches nothing".
    #[test]
    fn out_of_range_source_reaches_nothing() {
        let net = toy();
        assert_eq!(net.valley_free_distances(99), vec![None; net.len()]);
        assert_eq!(net.shortest_distances(99), vec![None; net.len()]);
        let empty = AsNetwork {
            providers: vec![],
            customers: vec![],
            peers: vec![],
        };
        assert!(empty.valley_free_distances(0).is_empty());
        assert!(empty.shortest_distances(0).is_empty());
    }
}
