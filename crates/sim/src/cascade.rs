//! Cascading-overload simulation on a capacitated network.
//!
//! The failure model behind the HOT-vs-hub comparison: route the
//! offered demand, fail **every** link whose utilization exceeds the
//! threshold in one deterministic batch, re-route the same demand on
//! the survivors, and repeat until a round fails nothing (the fixed
//! point). Each failing round removes at least one link, so the process
//! terminates in at most `|E|` failing rounds; the per-round trajectory
//! (links failed, stranded demand, surviving capacity) is the output.
//!
//! Rerouting runs on [`CsrGraph::edge_masked`] views — node ids and
//! relative adjacency order are preserved, so the batched engine's BFS
//! trees on the masked view are identical to trees on a rebuilt
//! subgraph, and the whole cascade is bit-identical at any thread
//! count. [`cascade_naive`] is the per-flow, per-round reference kept
//! for differential tests: with integer demands the two agree exactly,
//! round by round.

use crate::demand::OdDemand;
use crate::routing::Demand;
use crate::traffic::{link_loads, naive_link_load, RoutePolicy, TrafficLoads};
use hot_graph::csr::CsrGraph;
use hot_graph::graph::NodeId;
use hot_graph::parallel::bfs_forest;

/// Parameters of the cascade loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CascadeConfig {
    /// A link fails when its utilization (load / capacity) strictly
    /// exceeds this (must be positive; 1.0 = fail past rated capacity).
    pub threshold: f64,
    /// Safety cap on rounds (≥ 1). Termination is guaranteed in
    /// `|E| + 1` rounds regardless, so the default never binds.
    pub max_rounds: usize,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            threshold: 1.0,
            max_rounds: usize::MAX,
        }
    }
}

/// One round of the cascade: the routing outcome on the links alive at
/// the start of the round, and the failures it triggered.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CascadeRound {
    /// Round index (0 = the initial routing).
    pub round: usize,
    /// Links that failed *this* round.
    pub failed: usize,
    /// Cumulative failed links after this round.
    pub failed_total: usize,
    /// Maximum utilization over the links alive at the start of the
    /// round (measured before this round's failures).
    pub max_util: f64,
    /// Demand routed this round.
    pub routed_traffic: f64,
    /// Demand stranded (no surviving path) this round.
    pub stranded_traffic: f64,
    /// Total capacity of the links still alive *after* this round's
    /// failures.
    pub surviving_capacity: f64,
}

/// Full cascade trajectory to the fixed point.
#[derive(Clone, Debug, PartialEq)]
pub struct CascadeOutcome {
    /// Per-round records, in order. Never empty; the last round is the
    /// fixed point (failed == 0) whenever `converged` is true.
    pub rounds: Vec<CascadeRound>,
    /// Which links survived the whole cascade.
    pub alive: Vec<bool>,
    /// `true` when a round failed nothing (fixed point reached);
    /// `false` only if `max_rounds` cut the loop short.
    pub converged: bool,
}

impl CascadeOutcome {
    /// The last recorded round (the fixed point when converged).
    pub fn final_round(&self) -> &CascadeRound {
        self.rounds.last().expect("at least one round is recorded")
    }

    /// Total links lost across the cascade.
    pub fn failed_links(&self) -> usize {
        self.final_round().failed_total
    }

    /// Fraction of offered demand stranded at the fixed point (0 when
    /// nothing was offered).
    pub fn stranded_fraction(&self) -> f64 {
        let r = self.final_round();
        let offered = r.routed_traffic + r.stranded_traffic;
        if offered > 0.0 {
            r.stranded_traffic / offered
        } else {
            0.0
        }
    }
}

fn check_inputs(csr: &CsrGraph, capacities: &[f64], cfg: &CascadeConfig) {
    assert_eq!(
        capacities.len(),
        csr.edge_count(),
        "one capacity per link required"
    );
    assert!(
        capacities.iter().all(|&c| c > 0.0),
        "capacities must be positive"
    );
    assert!(
        cfg.threshold > 0.0,
        "threshold must be positive, got {}",
        cfg.threshold
    );
    assert!(cfg.max_rounds >= 1, "at least one round required");
}

/// Runs the cascade of `demand` over `csr` with per-link `capacities`
/// (indexed by `EdgeId`), using the batched engine
/// ([`RoutePolicy::TreePath`]) for every re-route round. Deterministic
/// and bit-identical at any `threads`; with integer demands, exactly
/// equal to [`cascade_naive`].
pub fn cascade(
    csr: &CsrGraph,
    demand: &dyn OdDemand,
    capacities: &[f64],
    cfg: &CascadeConfig,
    threads: usize,
) -> CascadeOutcome {
    check_inputs(csr, capacities, cfg);
    run_cascade(csr, capacities, cfg, |mcsr| {
        link_loads(mcsr, demand, RoutePolicy::TreePath, threads)
    })
}

/// The per-flow, per-round reference implementation of [`cascade`]:
/// every round materializes the same flows, rebuilds a BFS forest on
/// the masked view, and walks each flow's tree path edge by edge
/// ([`naive_link_load`]). Serial and slow — kept as the differential
/// baseline the fast path is tested (and release-gated) against.
pub fn cascade_naive(
    csr: &CsrGraph,
    demand: &dyn OdDemand,
    capacities: &[f64],
    cfg: &CascadeConfig,
) -> CascadeOutcome {
    check_inputs(csr, capacities, cfg);
    assert_eq!(
        demand.node_count(),
        csr.node_count(),
        "demand sized for a different graph"
    );
    // Gather the offered flows once; the demand does not change between
    // rounds, only the surviving topology does.
    let n = csr.node_count();
    let mut flows: Vec<Demand> = Vec::new();
    let mut sources: Vec<NodeId> = Vec::new();
    let mut row: Vec<(u32, f64)> = Vec::new();
    for s in 0..n {
        row.clear();
        demand.gather_row(s, &mut row);
        let before = flows.len();
        for &(dst, amount) in &row {
            // The batched engine never routes self-demand.
            if dst as usize != s {
                flows.push(Demand {
                    src: NodeId(s as u32),
                    dst: NodeId(dst),
                    amount,
                });
            }
        }
        if flows.len() > before {
            sources.push(NodeId(s as u32));
        }
    }
    run_cascade(csr, capacities, cfg, |mcsr| {
        let forest = bfs_forest(mcsr, &sources, 1);
        naive_link_load(mcsr, &forest, &flows)
    })
}

/// The shared cascade loop: `route` produces this round's loads on the
/// masked view, everything else (failure batch, bookkeeping, fixed
/// point) is identical between the batched and naive variants.
fn run_cascade(
    csr: &CsrGraph,
    capacities: &[f64],
    cfg: &CascadeConfig,
    mut route: impl FnMut(&CsrGraph) -> TrafficLoads,
) -> CascadeOutcome {
    let m = csr.edge_count();
    let mut alive = vec![true; m];
    let mut rounds: Vec<CascadeRound> = Vec::new();
    let mut failed_total = 0usize;
    let mut converged = false;
    loop {
        let (mcsr, map) = csr.edge_masked(&alive);
        let loads = route(&mcsr);
        let mut max_util = 0.0f64;
        let mut failed = 0usize;
        for (new, old) in map.iter().enumerate() {
            let util = loads.link_load[new] / capacities[old.index()];
            max_util = max_util.max(util);
            if util > cfg.threshold {
                alive[old.index()] = false;
                failed += 1;
            }
        }
        failed_total += failed;
        let surviving_capacity: f64 = alive
            .iter()
            .zip(capacities)
            .filter(|&(&a, _)| a)
            .map(|(_, &c)| c)
            .sum();
        rounds.push(CascadeRound {
            round: rounds.len(),
            failed,
            failed_total,
            max_util,
            routed_traffic: loads.routed_traffic,
            stranded_traffic: loads.unrouted_traffic,
            surviving_capacity,
        });
        if failed == 0 {
            converged = true;
            break;
        }
        if rounds.len() >= cfg.max_rounds {
            break;
        }
    }
    CascadeOutcome {
        rounds,
        alive,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_graph::graph::Graph;

    struct Dense {
        n: usize,
        d: Vec<f64>,
    }

    impl OdDemand for Dense {
        fn node_count(&self) -> usize {
            self.n
        }
        fn demand(&self, src: usize, dst: usize) -> f64 {
            self.d[src * self.n + dst]
        }
    }

    /// Square with one weak link: 0-3 demand takes the tree path over
    /// edge 0 and 2; edge 0's capacity trips, the re-route survives on
    /// the other side.
    fn square() -> (CsrGraph, Dense) {
        let g: Graph<(), ()> =
            Graph::from_edges(4, vec![(0, 1, ()), (0, 2, ()), (1, 3, ()), (2, 3, ())]);
        let mut d = vec![0.0; 16];
        d[3] = 4.0;
        (CsrGraph::from_graph(&g), Dense { n: 4, d })
    }

    #[test]
    fn weak_link_fails_and_reroute_survives() {
        let (csr, dem) = square();
        // Tree path 0-1-3 (edges 0, 2); edge 0 too small, the rest ample.
        let caps = vec![2.0, 10.0, 10.0, 10.0];
        let out = cascade(&csr, &dem, &caps, &CascadeConfig::default(), 2);
        assert!(out.converged);
        assert_eq!(out.rounds.len(), 2);
        assert_eq!(out.rounds[0].failed, 1);
        assert_eq!(out.rounds[0].max_util, 2.0);
        assert!(!out.alive[0]);
        assert_eq!(out.failed_links(), 1);
        // Fixed point: everything re-routes over 0-2-3.
        let last = out.final_round();
        assert_eq!(last.failed, 0);
        assert_eq!(last.routed_traffic, 4.0);
        assert_eq!(last.stranded_traffic, 0.0);
        assert_eq!(last.surviving_capacity, 30.0);
        assert_eq!(out.stranded_fraction(), 0.0);
    }

    #[test]
    fn total_collapse_strands_everything() {
        let (csr, dem) = square();
        // Every link far too small: each re-route overloads the next
        // path until nothing is left.
        let caps = vec![0.5; 4];
        let out = cascade(&csr, &dem, &caps, &CascadeConfig::default(), 1);
        assert!(out.converged);
        assert_eq!(out.failed_links(), 4);
        assert_eq!(out.final_round().routed_traffic, 0.0);
        assert_eq!(out.stranded_fraction(), 1.0);
        assert_eq!(out.final_round().surviving_capacity, 0.0);
        // Surviving capacity never increases.
        for pair in out.rounds.windows(2) {
            assert!(pair[1].surviving_capacity <= pair[0].surviving_capacity);
        }
        // Termination bound: at most |E| failing rounds + the fixed point.
        assert!(out.rounds.len() <= csr.edge_count() + 1);
    }

    #[test]
    fn ample_capacity_is_a_one_round_fixed_point() {
        let (csr, dem) = square();
        let out = cascade(&csr, &dem, &vec![100.0; 4], &CascadeConfig::default(), 4);
        assert!(out.converged);
        assert_eq!(out.rounds.len(), 1);
        assert_eq!(out.failed_links(), 0);
        assert!(out.alive.iter().all(|&a| a));
    }

    #[test]
    fn max_rounds_cuts_the_loop() {
        let (csr, dem) = square();
        let cfg = CascadeConfig {
            threshold: 1.0,
            max_rounds: 1,
        };
        let out = cascade(&csr, &dem, &vec![0.5; 4], &cfg, 1);
        assert!(!out.converged);
        assert_eq!(out.rounds.len(), 1);
    }

    #[test]
    fn naive_reference_agrees_on_the_square() {
        let (csr, dem) = square();
        for caps in [vec![2.0, 10.0, 10.0, 10.0], vec![0.5; 4], vec![100.0; 4]] {
            let fast = cascade(&csr, &dem, &caps, &CascadeConfig::default(), 3);
            let slow = cascade_naive(&csr, &dem, &caps, &CascadeConfig::default());
            assert_eq!(fast, slow, "caps {:?}", caps);
        }
    }

    #[test]
    fn empty_graph_converges_trivially() {
        let g: Graph<(), ()> = Graph::new();
        let csr = CsrGraph::from_graph(&g);
        let dem = Dense { n: 0, d: vec![] };
        let out = cascade(&csr, &dem, &[], &CascadeConfig::default(), 2);
        assert!(out.converged);
        assert_eq!(out.rounds.len(), 1);
        assert_eq!(out.final_round().max_util, 0.0);
    }
}
