//! The temporal internet: an epoch-based growth engine.
//!
//! Every scenario E1–E19 builds a one-shot topology, but the paper's
//! §5 thesis is about a *process*: the internet is the running output
//! of providers optimizing under economic and technology constraints
//! that move — demand compounds, transport cost per bit collapses, new
//! ISPs enter, and installed plant is periodically reinforced but never
//! unbuilt. This module simulates that process over the epoch/versioned
//! view API ([`hot_graph::epoch::EpochGraph`]): each simulated epoch
//! appends arrivals and links, optionally re-optimizes the backbone
//! under the epoch's prices ([`hot_econ::trend::TechTrend`] +
//! [`CableCatalog`] economics), and commits — the incremental CSR
//! rebuild and live union-find keep per-epoch analytics cheap.
//!
//! Two families of [`GrowthModel`] are provided:
//!
//! - [`HotGrowth`] — the paper's mechanism. Customers arrive in metro
//!   areas (Zipf-weighted), get a geographic position, and attach to
//!   the feasible router minimizing `α·distance + depth-to-core` (the
//!   FKP tradeoff) subject to a hard per-router degree cap (the
//!   line-card constraint). ISPs enter the largest markets on a
//!   schedule, and re-optimization adds backbone trunks between core
//!   pairs whose projected flow justifies the epoch-priced build cost —
//!   cheaper transport and compounding demand thicken the core mesh
//!   over time while access stays tree-like.
//! - [`DegreeGrowth`] — the BA/GLP controls grown incrementally:
//!   degree-proportional (optionally GLP-shifted) attachment with no
//!   geography, no cap, and no economics. Hubs only deepen.
//!
//! The engine is strictly serial and RNG-driven from one seed: a run
//! is a pure function of `(model, config)`, and thread count only ever
//! affects the analytics computed *on* the committed views (which run
//! on the fixed-chunk scheduler) — so E20 reports are byte-identical at
//! any thread count, like every other scenario.

use hot_econ::cable::CableCatalog;
use hot_econ::cost::LinkCost;
use hot_econ::trend::TechTrend;
use hot_geo::bbox::BoundingBox;
use hot_geo::point::Point;
use hot_graph::epoch::EpochGraph;
use hot_graph::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// What a node is in the evolving network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// Backbone/PoP router (exempt from the access degree cap — a
    /// modular chassis takes more line cards; trunks land here).
    Core,
    /// Access/stub customer router.
    Customer,
}

/// The evolving network: roles on nodes, geometric length on links
/// (1.0 for the geography-free controls).
pub type EvolveGraph = EpochGraph<NodeRole, f64>;

/// Engine-level schedule: how long, how fast, under which trend.
#[derive(Clone, Debug)]
pub struct EvolveConfig {
    /// Epochs to simulate (the engine itself is open-ended; this is
    /// what [`Evolution::run`] executes).
    pub epochs: u64,
    /// Customer arrivals per epoch (constant — demand growth scales
    /// traffic per customer, not the arrival code path).
    pub arrivals_per_epoch: usize,
    /// Technology/demand drift applied every epoch.
    pub trend: TechTrend,
    /// Re-optimize (ISP entry + backbone reinforcement) every this
    /// many epochs; 0 disables re-optimization entirely.
    pub reopt_interval: u64,
    /// Seed for the engine's single RNG stream.
    pub seed: u64,
}

/// What one epoch changed, in terms of the epoch graph's id ranges —
/// exactly what the rolling metrics need to update themselves.
#[derive(Clone, Debug)]
pub struct EpochDelta {
    /// The simulated epoch just completed (1-based; 0 is the seed).
    pub epoch: u64,
    /// Node ids added this epoch.
    pub new_nodes: Range<usize>,
    /// Edge ids added this epoch.
    pub new_edges: Range<usize>,
    /// Backbone links added by re-optimization (subset of `new_edges`).
    pub reopt_links: usize,
}

/// A growth mechanism the engine advances epoch by epoch.
pub trait GrowthModel {
    /// Short identifier for reports.
    fn name(&self) -> &'static str;

    /// Seeds the initial network into an empty graph (epoch 0).
    fn init(&mut self, g: &mut EvolveGraph, rng: &mut StdRng);

    /// Adds this epoch's arrivals. `demand_factor` / `cost_factor` are
    /// the trend's multipliers at this epoch.
    fn grow(
        &mut self,
        g: &mut EvolveGraph,
        epoch: u64,
        arrivals: usize,
        demand_factor: f64,
        cost_factor: f64,
        rng: &mut StdRng,
    );

    /// Periodic re-optimization under current economics; returns how
    /// many links it added. Default: none (the degree controls never
    /// re-optimize — there is no objective to re-optimize).
    fn reoptimize(
        &mut self,
        _g: &mut EvolveGraph,
        _epoch: u64,
        _demand_factor: f64,
        _cost_factor: f64,
        _rng: &mut StdRng,
    ) -> usize {
        0
    }
}

/// Drives a [`GrowthModel`] through epochs over an [`EvolveGraph`].
pub struct Evolution<M> {
    config: EvolveConfig,
    model: M,
    graph: EvolveGraph,
    rng: StdRng,
    epoch: u64,
}

impl<M: GrowthModel> Evolution<M> {
    /// Seeds the model and commits the epoch-0 view.
    pub fn new(mut model: M, config: EvolveConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut graph = EpochGraph::new(Graph::new());
        model.init(&mut graph, &mut rng);
        graph.commit();
        Evolution {
            config,
            model,
            graph,
            rng,
            epoch: 0,
        }
    }

    /// Simulated epochs completed (0 right after seeding).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The evolving graph (committed view = this epoch's network).
    #[inline]
    pub fn graph(&self) -> &EvolveGraph {
        &self.graph
    }

    /// Mutable access for analytics that need the union-find
    /// (`connected` path-compresses). Structure edits should go through
    /// the model, not here.
    #[inline]
    pub fn graph_mut(&mut self) -> &mut EvolveGraph {
        &mut self.graph
    }

    /// The schedule this run executes.
    #[inline]
    pub fn config(&self) -> &EvolveConfig {
        &self.config
    }

    /// The model's report name.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// Advances one epoch with the incremental commit (the production
    /// path).
    pub fn step(&mut self) -> EpochDelta {
        self.step_inner(false)
    }

    /// Advances one epoch with the from-scratch commit — the reference
    /// the differential suite compares [`Self::step`] against. Same
    /// mutations, same RNG draws, different rebuild path.
    pub fn step_reference(&mut self) -> EpochDelta {
        self.step_inner(true)
    }

    fn step_inner(&mut self, full_rebuild: bool) -> EpochDelta {
        let nodes0 = self.graph.node_count();
        let edges0 = self.graph.edge_count();
        self.epoch += 1;
        let demand = self.config.trend.demand_factor(self.epoch);
        let cost = self.config.trend.cost_factor(self.epoch);
        self.model.grow(
            &mut self.graph,
            self.epoch,
            self.config.arrivals_per_epoch,
            demand,
            cost,
            &mut self.rng,
        );
        let reopt_links =
            if self.config.reopt_interval > 0 && self.epoch % self.config.reopt_interval == 0 {
                self.model
                    .reoptimize(&mut self.graph, self.epoch, demand, cost, &mut self.rng)
            } else {
                0
            };
        if full_rebuild {
            self.graph.commit_full();
        } else {
            self.graph.commit();
        }
        EpochDelta {
            epoch: self.epoch,
            new_nodes: nodes0..self.graph.node_count(),
            new_edges: edges0..self.graph.edge_count(),
            reopt_links,
        }
    }

    /// Runs the configured number of epochs, handing every delta (and
    /// the committed graph) to `observer`.
    pub fn run(&mut self, mut observer: impl FnMut(&mut EvolveGraph, &EpochDelta)) {
        for _ in 0..self.config.epochs {
            let delta = self.step();
            observer(&mut self.graph, &delta);
        }
    }

    /// Unwraps the evolved graph.
    pub fn into_graph(self) -> EvolveGraph {
        self.graph
    }
}

// ---------------------------------------------------------------------------
// HOT growth
// ---------------------------------------------------------------------------

/// Parameters of the HOT growth mechanism.
#[derive(Clone, Debug)]
pub struct HotGrowthConfig {
    /// Metro areas customers arrive in (Zipf-weighted market sizes).
    pub cities: usize,
    /// Distance weight in the `α·dist + depth` attachment objective.
    pub alpha: f64,
    /// Per-router access degree cap (the line-card constraint; cores
    /// are exempt for trunks but not for customer attachment).
    pub degree_cap: u32,
    /// Customer scatter radius around a metro center.
    pub metro_radius: f64,
    /// Traffic units one customer sources at epoch 0 (scaled by the
    /// demand trend thereafter).
    pub demand_per_customer: f64,
    /// Backbone trunks re-optimization may add per pass.
    pub max_trunks_per_reopt: usize,
    /// A customer dual-homes once the trend's cost factor drops below
    /// this (cheap transport makes redundancy affordable).
    pub multihome_cost_threshold: f64,
    /// Cable price list the trunk economics use (scaled per epoch).
    pub catalog: CableCatalog,
}

impl Default for HotGrowthConfig {
    fn default() -> Self {
        HotGrowthConfig {
            cities: 8,
            alpha: 6.0,
            degree_cap: 12,
            metro_radius: 40.0,
            demand_per_customer: 1.0,
            max_trunks_per_reopt: 2,
            multihome_cost_threshold: 0.4,
            catalog: CableCatalog::realistic_2003(),
        }
    }
}

/// The paper's mechanism as an incremental process: constrained
/// optimization at the access edge, explicit economics in the core.
pub struct HotGrowth {
    cfg: HotGrowthConfig,
    link_cost: LinkCost,
    /// Metro centers and their (unnormalized Zipf) market weights.
    centers: Vec<Point>,
    weights: Vec<f64>,
    /// Per-node geometry and tree position.
    pos: Vec<Point>,
    depth: Vec<u32>,
    /// Which core's service tree each node hangs off (index into
    /// `cores`).
    root_core: Vec<u32>,
    /// Attachment candidates per city (every node, filtered by the
    /// live degree cap at selection time).
    city_members: Vec<Vec<u32>>,
    /// Backbone routers, in entry order.
    cores: Vec<u32>,
    /// Home city of each core (parallel to `cores`).
    core_city: Vec<u32>,
    /// Customers served under each core's tree.
    served: Vec<u64>,
}

impl HotGrowth {
    pub fn new(cfg: HotGrowthConfig) -> Self {
        assert!(cfg.cities >= 1, "need at least one metro");
        assert!(cfg.degree_cap >= 2, "cap must admit a through-path");
        let link_cost = LinkCost::cables_only(cfg.catalog.clone());
        HotGrowth {
            cfg,
            link_cost,
            centers: Vec::new(),
            weights: Vec::new(),
            pos: Vec::new(),
            depth: Vec::new(),
            root_core: Vec::new(),
            city_members: Vec::new(),
            cores: Vec::new(),
            core_city: Vec::new(),
            served: Vec::new(),
        }
    }

    /// Zipf-weighted city draw.
    fn pick_city(&self, rng: &mut StdRng) -> usize {
        let total: f64 = self.weights.iter().sum();
        let mut r = rng.random::<f64>() * total;
        for (i, w) in self.weights.iter().enumerate() {
            r -= w;
            if r <= 0.0 {
                return i;
            }
        }
        self.weights.len() - 1
    }

    /// Registers a new node's book-keeping rows.
    fn track(&mut self, v: NodeId, p: Point, depth: u32, root: u32, city: usize) {
        debug_assert_eq!(v.index(), self.pos.len());
        self.pos.push(p);
        self.depth.push(depth);
        self.root_core.push(root);
        self.city_members[city].push(v.0);
    }

    /// Adds a core router at `p` in `city`, wired into the backbone:
    /// one trunk to the nearest existing core, plus (entrants only) a
    /// peering link to the most-served core — the exchange point.
    fn add_core(&mut self, g: &mut EvolveGraph, city: usize, p: Point, peer_up: bool) -> NodeId {
        let v = g.add_node(NodeRole::Core);
        let core_idx = self.cores.len() as u32;
        self.cores.push(v.0);
        self.core_city.push(city as u32);
        self.served.push(0);
        self.track(v, p, 0, core_idx, city);
        if core_idx > 0 {
            let nearest = self.cores[..core_idx as usize]
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da = self.pos[a as usize].dist(&p);
                    let db = self.pos[b as usize].dist(&p);
                    da.partial_cmp(&db).expect("finite").then(a.cmp(&b))
                })
                .expect("previous cores exist");
            g.add_edge(
                NodeId(nearest),
                v,
                self.pos[nearest as usize].dist(&p).max(1e-9),
            );
            if peer_up {
                let busiest = self.served[..core_idx as usize]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                    .map(|(i, _)| self.cores[i])
                    .expect("previous cores exist");
                if busiest != nearest && g.graph().find_edge(NodeId(busiest), v).is_none() {
                    g.add_edge(
                        NodeId(busiest),
                        v,
                        self.pos[busiest as usize].dist(&p).max(1e-9),
                    );
                }
            }
        }
        v
    }

    /// Best attachment in `city` for a customer at `p`: minimize
    /// `α·dist + depth` over members with spare ports. Returns up to
    /// two distinct choices (primary, runner-up for multihoming).
    fn best_attachments(
        &self,
        g: &EvolveGraph,
        city: usize,
        p: Point,
    ) -> (Option<u32>, Option<u32>) {
        let scale = 1.0 / self.cfg.metro_radius.max(1e-9);
        let mut best: Option<(f64, u32)> = None;
        let mut second: Option<(f64, u32)> = None;
        for &cand in &self.city_members[city] {
            let v = NodeId(cand);
            if (g.graph().degree(v) as u32) >= self.cfg.degree_cap {
                continue;
            }
            let score = self.cfg.alpha * self.pos[cand as usize].dist(&p) * scale
                + self.depth[cand as usize] as f64;
            let entry = (score, cand);
            match best {
                None => best = Some(entry),
                Some(b) if entry.0 < b.0 || (entry.0 == b.0 && entry.1 < b.1) => {
                    second = best;
                    best = Some(entry);
                }
                _ => match second {
                    None => second = Some(entry),
                    Some(s) if entry.0 < s.0 || (entry.0 == s.0 && entry.1 < s.1) => {
                        second = Some(entry)
                    }
                    _ => {}
                },
            }
        }
        (best.map(|(_, v)| v), second.map(|(_, v)| v))
    }
}

impl GrowthModel for HotGrowth {
    fn name(&self) -> &'static str {
        "hot"
    }

    /// Seeds Zipf-weighted metro centers, one core per metro (backbone
    /// tree + a closing ring link when there are ≥ 3 metros).
    fn init(&mut self, g: &mut EvolveGraph, rng: &mut StdRng) {
        let region = BoundingBox::square(1000.0);
        self.city_members = vec![Vec::new(); self.cfg.cities];
        for i in 0..self.cfg.cities {
            self.centers.push(region.sample_uniform(rng));
            self.weights.push(1.0 / (i as f64 + 1.0).powf(0.9));
        }
        for city in 0..self.cfg.cities {
            let p = self.centers[city];
            self.add_core(g, city, p, false);
        }
        if self.cfg.cities >= 3 {
            let first = NodeId(self.cores[0]);
            let last = NodeId(self.cores[self.cfg.cities - 1]);
            let d = self.pos[first.index()]
                .dist(&self.pos[last.index()])
                .max(1e-9);
            if g.graph().find_edge(first, last).is_none() {
                g.add_edge(first, last, d);
            }
        }
    }

    /// One epoch of customer arrivals: Zipf metro draw, scatter in the
    /// metro disc, attach by `α·dist + depth` under the degree cap;
    /// dual-home to the runner-up once transport is cheap enough.
    fn grow(
        &mut self,
        g: &mut EvolveGraph,
        _epoch: u64,
        arrivals: usize,
        _demand_factor: f64,
        cost_factor: f64,
        rng: &mut StdRng,
    ) {
        for _ in 0..arrivals {
            let city = self.pick_city(rng);
            let center = self.centers[city];
            let angle = rng.random::<f64>() * std::f64::consts::TAU;
            let radius = self.cfg.metro_radius * rng.random::<f64>().sqrt();
            let p = Point {
                x: center.x + radius * angle.cos(),
                y: center.y + radius * angle.sin(),
            };
            let (primary, runner_up) = self.best_attachments(g, city, p);
            let target = NodeId(primary.expect("a metro always has its core"));
            let v = g.add_node(NodeRole::Customer);
            g.add_edge(target, v, self.pos[target.index()].dist(&p).max(1e-9));
            let root = self.root_core[target.index()];
            self.track(v, p, self.depth[target.index()] + 1, root, city);
            self.served[root as usize] += 1;
            if cost_factor < self.cfg.multihome_cost_threshold {
                if let Some(alt) = runner_up {
                    let alt = NodeId(alt);
                    if g.graph().find_edge(alt, v).is_none() {
                        g.add_edge(alt, v, self.pos[alt.index()].dist(&p).max(1e-9));
                    }
                }
            }
        }
    }

    /// Periodic re-optimization: an ISP enters the most under-served
    /// big market (competition follows customers), then backbone trunks
    /// are added between the core pairs whose projected gravity flow
    /// justifies the epoch-priced build — buy-at-bulk economics on the
    /// trend-scaled catalog.
    fn reoptimize(
        &mut self,
        g: &mut EvolveGraph,
        epoch: u64,
        demand_factor: f64,
        cost_factor: f64,
        rng: &mut StdRng,
    ) -> usize {
        let edges_before = g.edge_count();
        // (a) ISP/PoP entry: the city with the most customers per
        //     resident core gets a new core near its center.
        let mut pressure: Vec<f64> = vec![0.0; self.cfg.cities];
        let mut cores_in: Vec<u32> = vec![0; self.cfg.cities];
        for (idx, &city) in self.core_city.iter().enumerate() {
            cores_in[city as usize] += 1;
            pressure[city as usize] += self.served[idx] as f64;
        }
        let (entry_city, _) = pressure
            .iter()
            .enumerate()
            .map(|(c, &p)| (c, p / cores_in[c].max(1) as f64))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
            .expect("at least one city");
        let jitter = self.cfg.metro_radius * 0.25;
        let p = Point {
            x: self.centers[entry_city].x + (rng.random::<f64>() - 0.5) * jitter,
            y: self.centers[entry_city].y + (rng.random::<f64>() - 0.5) * jitter,
        };
        self.add_core(g, entry_city, p, true);
        // (b) Backbone reinforcement: score unconnected core pairs by
        //     projected flow (gravity on served customers, scaled by the
        //     demand trend) against the trunk's epoch-priced build cost
        //     (uniform cost_factor scaling preserves the catalog axioms,
        //     so scaling the evaluated cost is exact).
        let mut candidates: Vec<(f64, u32, u32)> = Vec::new();
        for i in 0..self.cores.len() {
            for j in (i + 1)..self.cores.len() {
                let (a, b) = (self.cores[i], self.cores[j]);
                if g.graph().find_edge(NodeId(a), NodeId(b)).is_some() {
                    continue;
                }
                let flow = self.served[i] as f64
                    * self.served[j] as f64
                    * self.cfg.demand_per_customer
                    * demand_factor
                    / (self.served.iter().sum::<u64>().max(1) as f64);
                if flow <= 0.0 {
                    continue;
                }
                let length = self.pos[a as usize].dist(&self.pos[b as usize]).max(1e-9);
                let build = self.link_cost.cost(length, flow) * cost_factor;
                // Surplus: what the traffic is worth minus the build.
                let surplus = flow * length - build;
                if surplus > 0.0 {
                    candidates.push((surplus, a, b));
                }
            }
        }
        candidates.sort_by(|x, y| {
            y.0.partial_cmp(&x.0)
                .expect("finite")
                .then(x.1.cmp(&y.1))
                .then(x.2.cmp(&y.2))
        });
        for &(_, a, b) in candidates.iter().take(self.cfg.max_trunks_per_reopt) {
            let d = self.pos[a as usize].dist(&self.pos[b as usize]).max(1e-9);
            g.add_edge(NodeId(a), NodeId(b), d);
        }
        let _ = epoch;
        g.edge_count() - edges_before
    }
}

// ---------------------------------------------------------------------------
// Degree-driven controls
// ---------------------------------------------------------------------------

/// BA/GLP-style incremental control: degree-proportional attachment
/// with no geography, no cap, no economics.
pub struct DegreeGrowth {
    name: &'static str,
    /// Links per arriving node.
    pub m: usize,
    /// GLP degree shift (`0` = pure BA preferential attachment).
    pub beta: f64,
    /// Probability an arrival event instead densifies: adds `m` links
    /// between existing nodes (GLP's edge events; `0` = pure BA).
    pub p_edge_only: f64,
}

impl DegreeGrowth {
    /// Pure Barabási–Albert arrivals.
    pub fn ba(m: usize) -> Self {
        assert!(m >= 1);
        DegreeGrowth {
            name: "ba",
            m,
            beta: 0.0,
            p_edge_only: 0.0,
        }
    }

    /// Bu–Towsley GLP arrivals (their fitted constants).
    pub fn glp(m: usize) -> Self {
        assert!(m >= 1);
        DegreeGrowth {
            name: "glp",
            m,
            beta: 0.6447,
            p_edge_only: 0.4695,
        }
    }

    /// Draws a node `∝ max(degree − β, ε)`, excluding `exclude`.
    fn preferential_pick(
        &self,
        g: &EvolveGraph,
        exclude: &[u32],
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        let n = g.node_count();
        let mut total = 0.0;
        for v in 0..n {
            if exclude.contains(&(v as u32)) {
                continue;
            }
            total += (g.graph().degree(NodeId(v as u32)) as f64 - self.beta).max(1e-9);
        }
        if total <= 0.0 {
            return None;
        }
        let mut r = rng.random::<f64>() * total;
        for v in 0..n {
            if exclude.contains(&(v as u32)) {
                continue;
            }
            r -= (g.graph().degree(NodeId(v as u32)) as f64 - self.beta).max(1e-9);
            if r <= 0.0 {
                return Some(NodeId(v as u32));
            }
        }
        (0..n)
            .rev()
            .find(|&v| !exclude.contains(&(v as u32)))
            .map(|v| NodeId(v as u32))
    }
}

impl GrowthModel for DegreeGrowth {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Seeds a clique on `m + 1` nodes (the same seed `ba::generate`
    /// uses).
    fn init(&mut self, g: &mut EvolveGraph, _rng: &mut StdRng) {
        let seed = self.m + 1;
        for _ in 0..seed {
            g.add_node(NodeRole::Core);
        }
        for a in 0..seed {
            for b in (a + 1)..seed {
                g.add_edge(NodeId(a as u32), NodeId(b as u32), 1.0);
            }
        }
    }

    fn grow(
        &mut self,
        g: &mut EvolveGraph,
        _epoch: u64,
        arrivals: usize,
        _demand_factor: f64,
        _cost_factor: f64,
        rng: &mut StdRng,
    ) {
        for _ in 0..arrivals {
            if self.p_edge_only > 0.0 && rng.random::<f64>() < self.p_edge_only {
                // Densification event: m new links between existing
                // nodes (distinct endpoints, no parallels; bounded
                // resampling so termination never depends on luck).
                for _ in 0..self.m {
                    let mut placed = false;
                    for _ in 0..32 {
                        let Some(a) = self.preferential_pick(g, &[], rng) else {
                            break;
                        };
                        let Some(b) = self.preferential_pick(g, &[a.0], rng) else {
                            break;
                        };
                        if g.graph().find_edge(a, b).is_none() {
                            g.add_edge(a, b, 1.0);
                            placed = true;
                            break;
                        }
                    }
                    let _ = placed;
                }
            } else {
                let mut chosen: Vec<u32> = Vec::with_capacity(self.m);
                for _ in 0..self.m.min(g.node_count()) {
                    if let Some(t) = self.preferential_pick(g, &chosen, rng) {
                        chosen.push(t.0);
                    }
                }
                let v = g.add_node(NodeRole::Customer);
                for &t in &chosen {
                    g.add_edge(NodeId(t), v, 1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_graph::csr::CsrGraph;

    fn tiny_config(seed: u64) -> EvolveConfig {
        EvolveConfig {
            epochs: 6,
            arrivals_per_epoch: 10,
            trend: TechTrend::dotcom(),
            reopt_interval: 2,
            seed,
        }
    }

    #[test]
    fn hot_runs_are_reproducible() {
        let run = |seed| {
            let mut evo = Evolution::new(
                HotGrowth::new(HotGrowthConfig {
                    cities: 4,
                    ..HotGrowthConfig::default()
                }),
                tiny_config(seed),
            );
            let mut deltas = Vec::new();
            evo.run(|g, d| deltas.push((d.new_nodes.clone(), d.new_edges.clone(), g.epoch())));
            (deltas, evo.graph().csr().clone())
        };
        let (d1, c1) = run(11);
        let (d2, c2) = run(11);
        assert_eq!(d1, d2);
        assert_eq!(c1, c2);
        let (_, c3) = run(12);
        assert_ne!(c1, c3, "seed must matter");
    }

    #[test]
    fn hot_growth_is_connected_and_capped_at_the_access_edge() {
        let cfg = HotGrowthConfig {
            cities: 5,
            degree_cap: 6,
            ..HotGrowthConfig::default()
        };
        let cap = cfg.degree_cap;
        let mut evo = Evolution::new(HotGrowth::new(cfg), tiny_config(7));
        evo.run(|_, _| {});
        let g = evo.graph();
        assert_eq!(g.components(), 1, "arrivals always attach");
        assert_eq!(g.epoch(), 7, "seed commit + 6 epochs");
        // Customers never exceed the cap; cores may only via trunks /
        // entry peering, which are few.
        for v in 0..g.node_count() {
            let v = NodeId(v as u32);
            if *g.node_weight(v) == NodeRole::Customer {
                assert!(g.graph().degree(v) as u32 <= cap);
            }
        }
        let reopt_epochs = 3u64; // epochs 2, 4, 6
        assert_eq!(
            g.node_count() as u64,
            5 + 6 * 10 + reopt_epochs,
            "5 seed cores, 10 arrivals × 6 epochs, 1 entrant per reopt"
        );
    }

    #[test]
    fn degree_controls_build_hubs() {
        let mut evo = Evolution::new(DegreeGrowth::ba(2), tiny_config(3));
        evo.run(|_, _| {});
        let g = evo.graph();
        assert_eq!(g.components(), 1);
        assert_eq!(g.node_count(), 3 + 60, "clique seed + 60 arrivals");
        assert_eq!(g.edge_count(), 3 + 60 * 2);
        let max_deg = (0..g.node_count())
            .map(|v| g.graph().degree(NodeId(v as u32)))
            .max()
            .unwrap();
        assert!(max_deg > 8, "preferential attachment grows hubs");
        // GLP variant stays runnable and multigraph-free.
        let mut glp = Evolution::new(DegreeGrowth::glp(2), tiny_config(3));
        glp.run(|_, _| {});
        let gg = glp.graph().graph();
        for (e, a, b, _) in gg.edges() {
            assert_ne!(a, b);
            let dup = gg
                .edges()
                .filter(|&(e2, x, y, _)| e2 != e && ((x, y) == (a, b) || (x, y) == (b, a)))
                .count();
            assert_eq!(dup, 0, "controls avoid parallel links");
        }
    }

    #[test]
    fn incremental_and_reference_steps_agree() {
        let mk = || {
            Evolution::new(
                HotGrowth::new(HotGrowthConfig {
                    cities: 3,
                    ..HotGrowthConfig::default()
                }),
                tiny_config(42),
            )
        };
        let mut inc = mk();
        let mut full = mk();
        for _ in 0..6 {
            let a = inc.step();
            let b = full.step_reference();
            assert_eq!(a.new_nodes, b.new_nodes);
            assert_eq!(a.new_edges, b.new_edges);
            assert_eq!(inc.graph().csr(), full.graph().csr());
            assert_eq!(
                inc.graph().csr(),
                &CsrGraph::from_graph(inc.graph().graph())
            );
        }
    }
}
