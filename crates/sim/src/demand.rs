//! Demand-matrix generators for the traffic engine.
//!
//! The paper's HOT argument is that traffic and economics shape topology;
//! running that argument forward needs a *workload*: who sends how much
//! to whom. This module generates origin–destination demand over the
//! nodes of a finished topology, in three standard flavors keyed off
//! node degree and (when available) geography:
//!
//! - **gravity** — `demand(i, j) ∝ mass_i · mass_j / dist(i, j)^γ`, the
//!   first-order model of aggregate traffic (mass defaults to node
//!   degree; with node positions the classic distance decay applies,
//!   without them the model is distance-blind);
//! - **uniform** — every ordered pair exchanges the same amount;
//! - **rank-biased** — Zipf mass over the degree ranking, concentrating
//!   demand on the hubs the way per-host popularity distributions do.
//!
//! All three are *product-form* (`mass_i · mass_j · kernel(i, j)`), so a
//! matrix over n nodes stores O(n), answers point queries in O(1), and is
//! **symmetric with a zero diagonal by construction** — `a · b` and
//! `b · a` are the same IEEE product, so `demand(i, j)` and
//! `demand(j, i)` are bit-identical. Matrices are deterministic
//! functions of `(topology, config)`: the optional per-node mass jitter
//! draws from a seeded RNG in node order, so a fixed seed regenerates
//! the same matrix byte-for-byte.

use crate::routing::Demand;
use hot_geo::point::Point;
use hot_graph::csr::CsrGraph;
use hot_graph::graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which demand structure to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DemandModel {
    /// Every ordered pair exchanges the same amount.
    Uniform,
    /// `mass_i · mass_j / dist^γ` with mass = node degree. Distance decay
    /// applies only when node positions are supplied; without them the
    /// model is distance-blind (γ is ignored).
    Gravity {
        /// Distance-decay exponent γ (0 = distance-blind, 2 = classic).
        distance_exponent: f64,
    },
    /// Zipf mass over the degree ranking: the node with the k-th highest
    /// degree gets mass `1 / k^exponent` (ties broken by node id).
    RankBiased {
        /// Zipf exponent (≈1 for classic popularity curves).
        exponent: f64,
    },
}

/// Parameters of a demand build.
#[derive(Clone, Copy, Debug)]
pub struct DemandConfig {
    pub model: DemandModel,
    /// Total demand over unordered pairs; each direction of a pair
    /// carries the full symmetric amount, so the ordered-pair total is
    /// twice this.
    pub total_traffic: f64,
    /// Per-node multiplicative mass jitter amplitude in `[0, 1)`:
    /// `mass ·= 1 + jitter · u`, `u ~ U(-1, 1)` drawn from `seed` in
    /// node order. 0 disables the RNG entirely.
    pub mass_jitter: f64,
    /// Floor on pairwise distance (gravity with positions only).
    pub min_distance: f64,
    /// Seed for the mass jitter.
    pub seed: u64,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            model: DemandModel::Gravity {
                distance_exponent: 1.0,
            },
            total_traffic: 1_000_000.0,
            mass_jitter: 0.0,
            min_distance: 1.0,
            seed: 0,
        }
    }
}

/// An origin–destination demand source the traffic engine can route.
///
/// Implementations must be symmetric in intent; only `node_count` and
/// point queries are required. Self-demand is never routed: `demand`
/// should report 0 on the diagonal and `gather_row` must not emit it
/// (the engine drops any diagonal entry it receives anyway).
pub trait OdDemand: Sync {
    /// Number of nodes the demand is defined over.
    fn node_count(&self) -> usize;
    /// Demand from `src` to `dst` (0 expected on the diagonal).
    fn demand(&self, src: usize, dst: usize) -> f64;

    /// Appends `src`'s positive demands to `out` as `(dst, amount)`
    /// pairs in ascending `dst` order. This is the traffic engine's
    /// inner loop; the default delegates to [`Self::demand`] per pair,
    /// and implementations may specialize for speed — but must emit
    /// exactly the amounts `demand` reports (bit for bit), or the
    /// batched engine and the per-flow baseline drift apart.
    fn gather_row(&self, src: usize, out: &mut Vec<(u32, f64)>) {
        for dst in 0..self.node_count() {
            if dst == src {
                continue;
            }
            let amount = self.demand(src, dst);
            if amount > 0.0 {
                out.push((dst as u32, amount));
            }
        }
    }
}

/// A product-form origin–destination demand matrix: O(n) storage, O(1)
/// point queries, symmetric with zero diagonal. Build one with
/// [`DemandMatrix::build`] (standard models over a topology) or
/// [`DemandMatrix::from_masses`] (caller-supplied masses, e.g. "customers
/// only").
#[derive(Clone, Debug)]
pub struct DemandMatrix {
    mass: Vec<f64>,
    positions: Option<Vec<Point>>,
    gamma: f64,
    min_distance: f64,
    scale: f64,
}

impl DemandMatrix {
    /// Builds a demand matrix for the nodes of `csr` under `cfg`.
    /// `positions`, when given, must have one entry per node and enables
    /// gravity distance decay.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is present with the wrong length.
    pub fn build(csr: &CsrGraph, positions: Option<&[Point]>, cfg: &DemandConfig) -> DemandMatrix {
        let n = csr.node_count();
        let mut mass: Vec<f64> = match cfg.model {
            DemandModel::Uniform => vec![1.0; n],
            DemandModel::Gravity { .. } => (0..n)
                .map(|v| csr.degree(NodeId(v as u32)) as f64)
                .collect(),
            DemandModel::RankBiased { exponent } => {
                let mut by_degree: Vec<usize> = (0..n).collect();
                by_degree.sort_by_key(|&v| (std::cmp::Reverse(csr.degree(NodeId(v as u32))), v));
                let mut m = vec![0.0; n];
                for (rank, &v) in by_degree.iter().enumerate() {
                    m[v] = 1.0 / ((rank + 1) as f64).powf(exponent);
                }
                m
            }
        };
        if cfg.mass_jitter > 0.0 {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            for m in &mut mass {
                *m *= 1.0 + cfg.mass_jitter * rng.random_range(-1.0..1.0);
            }
        }
        let gamma = match cfg.model {
            DemandModel::Gravity { distance_exponent } => distance_exponent,
            _ => 0.0,
        };
        DemandMatrix::from_masses(
            mass,
            positions.map(|p| p.to_vec()),
            gamma,
            cfg.min_distance,
            cfg.total_traffic,
        )
    }

    /// Builds a matrix from explicit per-node masses — e.g. mass 1 on
    /// customer routers and 0 on infrastructure. Scaled so the total
    /// over unordered pairs equals `total_traffic` (all-zero masses stay
    /// all-zero).
    ///
    /// # Panics
    ///
    /// Panics if `positions` is present with a length other than
    /// `mass.len()`.
    pub fn from_masses(
        mass: Vec<f64>,
        positions: Option<Vec<Point>>,
        distance_exponent: f64,
        min_distance: f64,
        total_traffic: f64,
    ) -> DemandMatrix {
        if let Some(p) = &positions {
            assert_eq!(p.len(), mass.len(), "one position per node");
        }
        let mut matrix = DemandMatrix {
            mass,
            positions,
            gamma: distance_exponent,
            min_distance,
            scale: 1.0,
        };
        let raw = matrix.total();
        matrix.scale = if raw > 0.0 { total_traffic / raw } else { 0.0 };
        matrix
    }

    /// Like [`DemandMatrix::from_masses`], but with an explicit `scale`
    /// factor instead of normalizing the total: `demand(i, j) =
    /// scale * mass_i * mass_j * kernel(i, j)`. Skips the O(n²)
    /// normalization sweep of [`DemandMatrix::total`], which would
    /// dominate the whole run on million-node graphs. Load-shape
    /// statistics (flow counts, hop distributions, Gini) are invariant
    /// under the scale, so pass `1.0` unless absolute volumes matter.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is present with a length other than
    /// `mass.len()`.
    pub fn from_masses_scaled(
        mass: Vec<f64>,
        positions: Option<Vec<Point>>,
        distance_exponent: f64,
        min_distance: f64,
        scale: f64,
    ) -> DemandMatrix {
        if let Some(p) = &positions {
            assert_eq!(p.len(), mass.len(), "one position per node");
        }
        DemandMatrix {
            mass,
            positions,
            gamma: distance_exponent,
            min_distance,
            scale,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// Whether the matrix covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// The (possibly jittered) mass of node `i`.
    pub fn mass(&self, i: usize) -> f64 {
        self.mass[i]
    }

    #[inline]
    fn kernel(&self, i: usize, j: usize) -> f64 {
        match &self.positions {
            Some(pos) => {
                let d = pos[i].dist(&pos[j]).max(self.min_distance);
                if self.gamma == 0.0 {
                    1.0
                } else {
                    d.powf(-self.gamma)
                }
            }
            None => 1.0,
        }
    }

    /// Total demand node `i` originates: its row sum, O(n).
    pub fn row_sum(&self, i: usize) -> f64 {
        (0..self.len()).map(|j| self.demand(i, j)).sum()
    }

    /// Total demand over unordered pairs, O(n²) (O(n) would be possible
    /// without distance decay, but this is the testable definition).
    pub fn total(&self) -> f64 {
        let n = self.len();
        let mut t = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                t += self.demand(i, j);
            }
        }
        t
    }

    /// Materializes directed flows `s → dst` for every `s` in `sources`
    /// and every `dst ≠ s` with positive demand, in `(source-order,
    /// ascending dst)` order. Each direction of a pair carries the full
    /// symmetric amount.
    pub fn flows_from(&self, sources: &[NodeId]) -> Vec<Demand> {
        let n = self.len();
        let mut out = Vec::new();
        for &s in sources {
            for dst in 0..n {
                let amount = self.demand(s.index(), dst);
                if amount > 0.0 {
                    out.push(Demand {
                        src: s,
                        dst: NodeId(dst as u32),
                        amount,
                    });
                }
            }
        }
        out
    }

    /// All directed flows: [`Self::flows_from`] over every node. O(n²)
    /// entries — materialize only at sizes you can afford; the batched
    /// engine routes straight off the matrix without this.
    pub fn flows(&self) -> Vec<Demand> {
        let sources: Vec<NodeId> = (0..self.len() as u32).map(NodeId).collect();
        self.flows_from(&sources)
    }
}

impl OdDemand for DemandMatrix {
    fn node_count(&self) -> usize {
        self.len()
    }

    #[inline]
    fn demand(&self, src: usize, dst: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        self.scale * (self.mass[src] * self.mass[dst]) * self.kernel(src, dst)
    }

    /// Statically dispatched row sweep: one virtual call per source
    /// instead of one per pair, with an early-out for sources that
    /// originate nothing. Delegates to the `#[inline]` [`Self::demand`]
    /// per pair, so the emitted amounts are the point queries, bit for
    /// bit.
    fn gather_row(&self, src: usize, out: &mut Vec<(u32, f64)>) {
        if self.scale == 0.0 || self.mass[src] == 0.0 {
            return;
        }
        for dst in 0..self.len() {
            let amount = self.demand(src, dst);
            if amount > 0.0 {
                out.push((dst as u32, amount));
            }
        }
    }
}

/// Pointwise sum of two demand sources over the same node set:
/// `demand(i, j) = base(i, j) + overlay(i, j)`. The flash-crowd
/// building block — a baseline gravity matrix plus a rank-biased surge
/// aimed at the hubs — without materializing either component.
///
/// `gather_row` merges the two components' ascending-`dst` rows,
/// performing exactly one addition for each destination present in
/// both, so gathered amounts equal the point queries bit for bit.
pub struct SumDemand<'a> {
    base: &'a dyn OdDemand,
    overlay: &'a dyn OdDemand,
}

impl<'a> SumDemand<'a> {
    /// Overlays `overlay` on `base`.
    ///
    /// # Panics
    ///
    /// Panics if the two components cover different node counts.
    pub fn new(base: &'a dyn OdDemand, overlay: &'a dyn OdDemand) -> SumDemand<'a> {
        assert_eq!(
            base.node_count(),
            overlay.node_count(),
            "summed demands must cover the same nodes"
        );
        SumDemand { base, overlay }
    }
}

impl OdDemand for SumDemand<'_> {
    fn node_count(&self) -> usize {
        self.base.node_count()
    }

    #[inline]
    fn demand(&self, src: usize, dst: usize) -> f64 {
        self.base.demand(src, dst) + self.overlay.demand(src, dst)
    }

    fn gather_row(&self, src: usize, out: &mut Vec<(u32, f64)>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        self.base.gather_row(src, &mut a);
        self.overlay.gather_row(src, &mut b);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_graph::graph::Graph;

    /// Star with 4 leaves: hub 0 has degree 4, leaves degree 1.
    fn star() -> CsrGraph {
        let g: Graph<(), ()> = Graph::from_edges(5, (1..5).map(|i| (0, i, ())).collect::<Vec<_>>());
        CsrGraph::from_graph(&g)
    }

    fn cfg(model: DemandModel) -> DemandConfig {
        DemandConfig {
            model,
            total_traffic: 100.0,
            ..DemandConfig::default()
        }
    }

    #[test]
    fn uniform_spreads_evenly() {
        let dm = DemandMatrix::build(&star(), None, &cfg(DemandModel::Uniform));
        assert!((dm.total() - 100.0).abs() < 1e-9);
        // 10 unordered pairs → 10 each.
        assert!((dm.demand(1, 2) - 10.0).abs() < 1e-9);
        assert_eq!(dm.demand(3, 3), 0.0);
    }

    #[test]
    fn gravity_mass_follows_degree() {
        let dm = DemandMatrix::build(
            &star(),
            None,
            &cfg(DemandModel::Gravity {
                distance_exponent: 1.0,
            }),
        );
        // Hub-leaf demand is 4x leaf-leaf demand (mass 4·1 vs 1·1).
        assert!((dm.demand(0, 1) / dm.demand(1, 2) - 4.0).abs() < 1e-9);
        assert!((dm.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn gravity_distance_decay_with_positions() {
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(16.0, 0.0),
            Point::new(32.0, 0.0),
        ];
        let dm = DemandMatrix::build(
            &star(),
            Some(&pos),
            &cfg(DemandModel::Gravity {
                distance_exponent: 1.0,
            }),
        );
        // Same masses (leaf-leaf), 4x the distance → a quarter of the
        // demand: pairs (1,2) at distance 6 and (2,3) at 8 vs (1,4) at 30.
        assert!(dm.demand(1, 2) > dm.demand(1, 4));
        let ratio = dm.demand(1, 2) / dm.demand(1, 4);
        assert!((ratio - 5.0).abs() < 1e-9, "30/6 = {}", ratio);
    }

    #[test]
    fn rank_bias_concentrates_on_hubs() {
        let dm = DemandMatrix::build(
            &star(),
            None,
            &cfg(DemandModel::RankBiased { exponent: 1.0 }),
        );
        // Hub is rank 1 (mass 1), leaves ranks 2..=5 by id.
        assert!((dm.mass(0) - 1.0).abs() < 1e-12);
        assert!((dm.mass(1) - 0.5).abs() < 1e-12);
        assert!(dm.demand(0, 1) > dm.demand(3, 4));
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let base = DemandConfig {
            mass_jitter: 0.3,
            seed: 9,
            ..cfg(DemandModel::Gravity {
                distance_exponent: 0.0,
            })
        };
        let a = DemandMatrix::build(&star(), None, &base);
        let b = DemandMatrix::build(&star(), None, &base);
        let c = DemandMatrix::build(&star(), None, &DemandConfig { seed: 10, ..base });
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(a.demand(i, j).to_bits(), b.demand(i, j).to_bits());
            }
        }
        assert!((0..5).any(|i| a.mass(i).to_bits() != c.mass(i).to_bits()));
    }

    #[test]
    fn flows_match_row_sums() {
        let dm = DemandMatrix::build(
            &star(),
            None,
            &cfg(DemandModel::Gravity {
                distance_exponent: 0.0,
            }),
        );
        let flows = dm.flows();
        // 5 sources x 4 destinations, all masses positive.
        assert_eq!(flows.len(), 20);
        for i in 0..5 {
            let emitted: f64 = flows
                .iter()
                .filter(|f| f.src.index() == i)
                .map(|f| f.amount)
                .sum();
            assert!((emitted - dm.row_sum(i)).abs() < 1e-9);
        }
        let offered: f64 = flows.iter().map(|f| f.amount).sum();
        assert!((offered - 2.0 * dm.total()).abs() < 1e-9);
    }

    #[test]
    fn masked_masses_zero_out_infrastructure() {
        let dm = DemandMatrix::from_masses(vec![0.0, 1.0, 1.0, 1.0, 1.0], None, 0.0, 1.0, 60.0);
        assert_eq!(dm.demand(0, 1), 0.0);
        assert!((dm.demand(1, 2) - 10.0).abs() < 1e-9);
        assert!((dm.total() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sizes_stay_zero() {
        let dm = DemandMatrix::from_masses(Vec::new(), None, 0.0, 1.0, 10.0);
        assert!(dm.is_empty());
        assert_eq!(dm.total(), 0.0);
        assert!(dm.flows().is_empty());
        let one = DemandMatrix::from_masses(vec![3.0], None, 0.0, 1.0, 10.0);
        assert_eq!(one.total(), 0.0);
        assert_eq!(one.demand(0, 0), 0.0);
        let zeros = DemandMatrix::from_masses(vec![0.0; 4], None, 0.0, 1.0, 10.0);
        assert_eq!(zeros.total(), 0.0);
    }

    #[test]
    fn sum_demand_matches_pointwise_sum() {
        let csr = star();
        let base = DemandMatrix::build(
            &csr,
            None,
            &cfg(DemandModel::Gravity {
                distance_exponent: 0.0,
            }),
        );
        let surge =
            DemandMatrix::build(&csr, None, &cfg(DemandModel::RankBiased { exponent: 1.0 }));
        let sum = SumDemand::new(&base, &surge);
        assert_eq!(sum.node_count(), 5);
        for i in 0..5 {
            for j in 0..5 {
                let want = base.demand(i, j) + surge.demand(i, j);
                assert_eq!(sum.demand(i, j).to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn sum_demand_gather_merges_rows_bitwise() {
        // Disjoint + overlapping rows: base lives on nodes {1, 2},
        // surge on {2, 3}; node 2 is in both, 1 and 3 in exactly one.
        let base = DemandMatrix::from_masses(vec![0.0, 1.0, 2.0, 0.0, 1.0], None, 0.0, 1.0, 30.0);
        let surge = DemandMatrix::from_masses(vec![0.0, 0.0, 1.0, 3.0, 1.0], None, 0.0, 1.0, 50.0);
        let sum = SumDemand::new(&base, &surge);
        for src in 0..5 {
            let mut merged = Vec::new();
            sum.gather_row(src, &mut merged);
            // The default per-pair sweep over `demand` is the reference.
            let mut reference = Vec::new();
            for dst in 0..5 {
                if dst == src {
                    continue;
                }
                let amount = sum.demand(src, dst);
                if amount > 0.0 {
                    reference.push((dst as u32, amount));
                }
            }
            assert_eq!(merged.len(), reference.len(), "src {}", src);
            for (got, want) in merged.iter().zip(&reference) {
                assert_eq!(got.0, want.0, "src {}", src);
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "src {}", src);
            }
        }
    }

    #[test]
    #[should_panic(expected = "same nodes")]
    fn sum_demand_rejects_mismatched_sizes() {
        let a = DemandMatrix::from_masses(vec![1.0; 4], None, 0.0, 1.0, 10.0);
        let b = DemandMatrix::from_masses(vec![1.0; 5], None, 0.0, 1.0, 10.0);
        SumDemand::new(&a, &b);
    }

    #[test]
    fn from_masses_scaled_matches_normalized_up_to_scale() {
        let mass = vec![0.0, 2.0, 1.0, 3.0, 1.0];
        let pos: Vec<Point> = (0..5)
            .map(|i| Point::new(i as f64, 0.5 * i as f64))
            .collect();
        let normalized = DemandMatrix::from_masses(mass.clone(), Some(pos.clone()), 1.2, 0.5, 90.0);
        let raw = DemandMatrix::from_masses_scaled(mass, Some(pos), 1.2, 0.5, 1.0);
        let ratio = normalized.demand(1, 3) / raw.demand(1, 3);
        for i in 0..5 {
            for j in 0..5 {
                if raw.demand(i, j) > 0.0 {
                    assert!((normalized.demand(i, j) / raw.demand(i, j) - ratio).abs() < 1e-9);
                }
            }
        }
        assert!((normalized.total() - 90.0).abs() < 1e-9);
    }
}
