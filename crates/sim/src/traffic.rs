//! Batched, deterministic link-load simulation.
//!
//! [`crate::routing::route`] walks every flow's path edge by edge — fine
//! for thousands of demands, hopeless for the all-pairs workloads the
//! demand models in [`crate::demand`] describe (millions of OD flows).
//! This engine routes those workloads in O(n + m) per *source* instead
//! of O(path) per *flow*:
//!
//! 1. one CSR BFS tree per source, computed once into reused scratch
//!    ([`hot_graph::csr::CsrGraph::bfs_tree_into`]) and shared by every
//!    demand model in the batch;
//! 2. per model, a reverse-visit-order **subtree accumulation**: seed
//!    each destination with its demand, then push accumulated demand up
//!    the tree — every tree edge receives exactly the sum of the demands
//!    below it, which is what per-flow path walking would have added one
//!    flow at a time;
//! 3. sources fan out over the fixed 64-chunk scheduler
//!    ([`hot_graph::parallel::run_chunks`]): chunk boundaries ignore the
//!    thread count and partial load vectors merge in chunk order, so
//!    **link loads are bit-identical at every thread count**, and — for
//!    integer-valued demands — bit-identical to the naive per-flow walk.
//!
//! [`RoutePolicy::Ecmp`] additionally splits each flow equally over *all*
//! shortest paths (per-path, so parallel equal-length paths through a
//! high-σ neighbor carry proportionally more), via the same reverse
//! sweep with Brandes-style path counts.
//!
//! [`link_loads_weighted`] generalizes ECMP with per-link multiplicative
//! weights (a path's weight is the product of its edge weights; flows
//! split proportionally to weighted path counts). It is the mechanism
//! under the TE loop in [`crate::te`]: de-weighting a hot link shifts
//! traffic onto parallel shortest paths without changing any path
//! length. With all weights 1.0 it is **bit-identical** to
//! [`RoutePolicy::Ecmp`] (every weighted product multiplies by exactly
//! 1.0), and dyadic weights (the TE loop halves) keep the splits exact
//! in floating point.

use crate::demand::OdDemand;
use crate::routing::Demand;
use hot_graph::csr::{CsrBfsTree, CsrGraph, UNREACHABLE};
use hot_graph::parallel::{run_chunks, BfsForest};

/// How a flow is mapped onto shortest paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutePolicy {
    /// The deterministic BFS-tree path (first discovery in adjacency
    /// order) — what [`crate::routing::route`] uses for hop counts.
    TreePath,
    /// Equal-cost multipath: the flow splits over all shortest paths,
    /// proportionally to path counts (Brandes σ).
    Ecmp,
}

/// Link loads and flow accounting from one batched run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficLoads {
    /// Traffic carried by each link (indexed by `EdgeId`).
    pub link_load: Vec<f64>,
    /// OD flows routed (positive-demand ordered pairs with a path).
    pub routed_flows: u64,
    /// OD flows between disconnected endpoints.
    pub unrouted_flows: u64,
    /// Total routed traffic.
    pub routed_traffic: f64,
    /// Total traffic between disconnected endpoints.
    pub unrouted_traffic: f64,
    /// Total routed traffic × hops.
    pub traffic_hops: f64,
}

impl TrafficLoads {
    fn zero(links: usize) -> TrafficLoads {
        TrafficLoads {
            link_load: vec![0.0; links],
            routed_flows: 0,
            unrouted_flows: 0,
            routed_traffic: 0.0,
            unrouted_traffic: 0.0,
            traffic_hops: 0.0,
        }
    }

    fn absorb(&mut self, other: &TrafficLoads) {
        for (a, b) in self.link_load.iter_mut().zip(&other.link_load) {
            *a += b;
        }
        self.routed_flows += other.routed_flows;
        self.unrouted_flows += other.unrouted_flows;
        self.routed_traffic += other.routed_traffic;
        self.unrouted_traffic += other.unrouted_traffic;
        self.traffic_hops += other.traffic_hops;
    }

    /// Demand-weighted mean path length in hops.
    pub fn mean_hops(&self) -> f64 {
        if self.routed_traffic > 0.0 {
            self.traffic_hops / self.routed_traffic
        } else {
            0.0
        }
    }

    /// Maximum link load.
    pub fn max_load(&self) -> f64 {
        self.link_load.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all link loads (equals `traffic_hops` up to float
    /// reassociation).
    pub fn total_load(&self) -> f64 {
        self.link_load.iter().sum()
    }
}

/// Per-worker scratch: a reusable BFS tree, the subtree accumulator, the
/// ECMP path counts, and one positive-demand list per model. O(n) each,
/// allocated once per worker thread.
struct EngineScratch {
    tree: CsrBfsTree,
    acc: Vec<f64>,
    sigma: Vec<f64>,
    /// `entries[m]` = the current source's positive demands under model
    /// `m`, as `(dst, amount)`.
    entries: Vec<Vec<(u32, f64)>>,
}

/// Routes every demand model in `demands` over `csr` in one batched
/// sweep — each source's BFS tree is computed once and fanned out over
/// all models — and returns one [`TrafficLoads`] per model, in input
/// order. Output is bit-identical at every thread count.
///
/// Self-demand (the matrix diagonal) and non-positive demands are
/// ignored. All models must cover exactly `csr.node_count()` nodes.
pub fn link_loads_multi(
    csr: &CsrGraph,
    demands: &[&dyn OdDemand],
    policy: RoutePolicy,
    threads: usize,
) -> Vec<TrafficLoads> {
    link_loads_inner(csr, demands, policy, None, threads)
}

/// [`link_loads_multi`] under weighted ECMP: each flow splits over all
/// shortest paths proportionally to *weighted* path counts, where a
/// path's weight is the product of its links' entries in
/// `link_weights` (indexed by `EdgeId`, all positive and finite).
/// Unit weights reproduce [`RoutePolicy::Ecmp`] bit for bit; see the
/// module docs. Output is bit-identical at every thread count.
pub fn link_loads_weighted_multi(
    csr: &CsrGraph,
    demands: &[&dyn OdDemand],
    link_weights: &[f64],
    threads: usize,
) -> Vec<TrafficLoads> {
    assert_eq!(
        link_weights.len(),
        csr.edge_count(),
        "one weight per link required"
    );
    assert!(
        link_weights.iter().all(|&w| w.is_finite() && w > 0.0),
        "link weights must be positive and finite"
    );
    link_loads_inner(csr, demands, RoutePolicy::Ecmp, Some(link_weights), threads)
}

/// [`link_loads_weighted_multi`] for a single demand model.
pub fn link_loads_weighted(
    csr: &CsrGraph,
    demand: &dyn OdDemand,
    link_weights: &[f64],
    threads: usize,
) -> TrafficLoads {
    link_loads_weighted_multi(csr, &[demand], link_weights, threads)
        .pop()
        .expect("one model in, one result out")
}

fn link_loads_inner(
    csr: &CsrGraph,
    demands: &[&dyn OdDemand],
    policy: RoutePolicy,
    weights: Option<&[f64]>,
    threads: usize,
) -> Vec<TrafficLoads> {
    let n = csr.node_count();
    let links = csr.edge_count();
    for dem in demands {
        assert_eq!(dem.node_count(), n, "demand sized for a different graph");
    }
    let mut totals: Vec<TrafficLoads> = demands.iter().map(|_| TrafficLoads::zero(links)).collect();
    if n == 0 || demands.is_empty() {
        return totals;
    }
    let partials = run_chunks(
        n,
        threads,
        || EngineScratch {
            tree: CsrBfsTree::sized(n),
            acc: vec![0.0; n],
            sigma: vec![0.0; n],
            entries: demands.iter().map(|_| Vec::new()).collect(),
        },
        |scratch, range| {
            let mut partial: Vec<TrafficLoads> =
                demands.iter().map(|_| TrafficLoads::zero(links)).collect();
            for s in range {
                // Gather each model's positive demands first: a source
                // nobody sends from (masked masses, restricted bands)
                // skips its BFS entirely.
                let mut any = false;
                for (dem, entries) in demands.iter().zip(&mut scratch.entries) {
                    entries.clear();
                    dem.gather_row(s, entries);
                    any |= !entries.is_empty();
                }
                if !any {
                    continue;
                }
                csr.bfs_tree_into(hot_graph::graph::NodeId(s as u32), &mut scratch.tree);
                if policy == RoutePolicy::Ecmp {
                    count_paths(csr, &scratch.tree, &mut scratch.sigma, weights);
                }
                for (m, out) in partial.iter_mut().enumerate() {
                    accumulate_source(csr, scratch, m, policy, weights, out);
                }
            }
            partial
        },
    );
    for (_, partial) in partials {
        for (total, part) in totals.iter_mut().zip(&partial) {
            total.absorb(part);
        }
    }
    totals
}

/// [`link_loads_multi`] for a single demand model.
pub fn link_loads(
    csr: &CsrGraph,
    demand: &dyn OdDemand,
    policy: RoutePolicy,
    threads: usize,
) -> TrafficLoads {
    link_loads_multi(csr, &[demand], policy, threads)
        .pop()
        .expect("one model in, one result out")
}

/// Brandes-style shortest-path counts from the tree's source, into
/// `sigma` (entries outside the reached set are never read). With
/// `weights`, σ counts each path with the product of its edge weights;
/// unit weights multiply by exactly 1.0, so the unweighted numbers are
/// reproduced bit for bit.
fn count_paths(csr: &CsrGraph, tree: &CsrBfsTree, sigma: &mut [f64], weights: Option<&[f64]>) {
    for &v in tree.visit_order() {
        sigma[v.index()] = 0.0;
    }
    sigma[tree.source.index()] = 1.0;
    for &v in tree.visit_order() {
        let next = tree.dist[v.index()] + 1;
        match weights {
            None => {
                for &u in csr.neighbors(v) {
                    if tree.dist[u.index()] == next {
                        sigma[u.index()] += sigma[v.index()];
                    }
                }
            }
            Some(w) => {
                for (&u, &e) in csr.neighbors(v).iter().zip(csr.incident_edges(v)) {
                    if tree.dist[u.index()] == next {
                        sigma[u.index()] += sigma[v.index()] * w[e.index()];
                    }
                }
            }
        }
    }
}

/// Routes the gathered positive demands of model `m` (for the current
/// source, already in `scratch.entries[m]`) over the current scratch
/// tree into `out`. The subtree accumulator is left all-zero again on
/// return.
fn accumulate_source(
    csr: &CsrGraph,
    scratch: &mut EngineScratch,
    m: usize,
    policy: RoutePolicy,
    weights: Option<&[f64]>,
    out: &mut TrafficLoads,
) {
    let EngineScratch {
        tree,
        acc,
        sigma,
        entries,
    } = scratch;
    for &(v, amount) in &entries[m] {
        let v = v as usize;
        // Self-demand is never routed, whatever a gather_row emits.
        if v == tree.source.index() {
            continue;
        }
        if tree.dist[v] == UNREACHABLE {
            out.unrouted_flows += 1;
            out.unrouted_traffic += amount;
        } else {
            acc[v] = amount;
            out.routed_flows += 1;
            out.routed_traffic += amount;
            out.traffic_hops += amount * tree.dist[v] as f64;
        }
    }
    // Children precede parents in reverse visit order, so by the time a
    // node is popped its accumulator holds the whole subtree's demand.
    for &v in tree.visit_order().iter().rev() {
        if v == tree.source {
            continue;
        }
        let a = acc[v.index()];
        if a == 0.0 {
            continue;
        }
        match policy {
            RoutePolicy::TreePath => {
                let (p, e) = tree
                    .parent(v)
                    .expect("reached non-source node has a parent");
                out.link_load[e.index()] += a;
                acc[p.index()] += a;
            }
            RoutePolicy::Ecmp => {
                let dv = tree.dist[v.index()];
                let share = a / sigma[v.index()];
                for (&u, &e) in csr.neighbors(v).iter().zip(csr.incident_edges(v)) {
                    let du = tree.dist[u.index()];
                    if du != UNREACHABLE && du + 1 == dv {
                        // Weighted: the σ entering v through edge e is
                        // σ[u]·w(e), so that is e's share of the split.
                        // Unweighted multiplies by exactly 1.0 — the
                        // two cases are bit-identical at unit weights.
                        let c = match weights {
                            None => share * sigma[u.index()],
                            Some(w) => share * (sigma[u.index()] * w[e.index()]),
                        };
                        out.link_load[e.index()] += c;
                        acc[u.index()] += c;
                    }
                }
            }
        }
        acc[v.index()] = 0.0;
    }
    acc[tree.source.index()] = 0.0;
}

/// The per-flow reference engine: walks every flow's tree path edge by
/// edge over a prebuilt [`BfsForest`] (the multi-source tree cache).
/// Semantically [`crate::routing::route`] with `IgpMetric::HopCount`;
/// kept as the differential/speedup baseline for the batched engine.
/// Flows whose source has no tree in the forest — or whose endpoints
/// lie outside the graph — count as unrouted.
pub fn naive_link_load(csr: &CsrGraph, forest: &BfsForest, flows: &[Demand]) -> TrafficLoads {
    let n = csr.node_count();
    let mut out = TrafficLoads::zero(csr.edge_count());
    for f in flows {
        let path = if f.dst.index() < n {
            forest
                .tree_from(f.src)
                .and_then(|tree| tree.edge_path_to(f.dst))
        } else {
            None
        };
        match path {
            Some(path) => {
                for e in &path {
                    out.link_load[e.index()] += f.amount;
                }
                out.routed_flows += 1;
                out.routed_traffic += f.amount;
                out.traffic_hops += f.amount * path.len() as f64;
            }
            None => {
                out.unrouted_flows += 1;
                out.unrouted_traffic += f.amount;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandConfig, DemandMatrix, DemandModel};
    use crate::routing::{route, IgpMetric};
    use hot_graph::graph::{Graph, NodeId};
    use hot_graph::parallel::bfs_forest;

    /// A demand given by an explicit dense matrix (tests only).
    struct Dense {
        n: usize,
        d: Vec<f64>,
    }

    impl OdDemand for Dense {
        fn node_count(&self) -> usize {
            self.n
        }
        fn demand(&self, src: usize, dst: usize) -> f64 {
            self.d[src * self.n + dst]
        }
    }

    fn path4() -> (Graph<(), ()>, CsrGraph) {
        let g: Graph<(), ()> = Graph::from_edges(4, vec![(0, 1, ()), (1, 2, ()), (2, 3, ())]);
        let csr = CsrGraph::from_graph(&g);
        (g, csr)
    }

    #[test]
    fn batched_matches_route_on_path() {
        let (g, csr) = path4();
        let mut d = vec![0.0; 16];
        d[3] = 5.0; // 0 -> 3
        d[1 * 4 + 2] = 2.0; // 1 -> 2
        let dense = Dense { n: 4, d };
        let loads = link_loads(&csr, &dense, RoutePolicy::TreePath, 2);
        let flows = vec![
            Demand {
                src: NodeId(0),
                dst: NodeId(3),
                amount: 5.0,
            },
            Demand {
                src: NodeId(1),
                dst: NodeId(2),
                amount: 2.0,
            },
        ];
        let reference = route(&g, &flows, IgpMetric::HopCount, |_, _| 1.0);
        assert_eq!(loads.link_load, reference.link_load);
        assert_eq!(loads.routed_flows, 2);
        assert_eq!(loads.unrouted_flows, 0);
        assert!((loads.mean_hops() - reference.mean_hops()).abs() < 1e-12);
        let forest = bfs_forest(&csr, &[NodeId(0), NodeId(1)], 1);
        let naive = naive_link_load(&csr, &forest, &flows);
        assert_eq!(naive.link_load, loads.link_load);
        assert_eq!(naive.routed_traffic, loads.routed_traffic);
    }

    #[test]
    fn ecmp_splits_across_equal_paths() {
        // Square: two 2-hop paths from 0 to 3.
        let g: Graph<(), ()> =
            Graph::from_edges(4, vec![(0, 1, ()), (0, 2, ()), (1, 3, ()), (2, 3, ())]);
        let csr = CsrGraph::from_graph(&g);
        let mut d = vec![0.0; 16];
        d[3] = 2.0;
        let dense = Dense { n: 4, d };
        let tree = link_loads(&csr, &dense, RoutePolicy::TreePath, 1);
        let ecmp = link_loads(&csr, &dense, RoutePolicy::Ecmp, 1);
        // Tree path uses one side only; ECMP puts exactly 1.0 on all
        // four edges (2 paths, amount 2, splits are powers of two).
        assert_eq!(tree.link_load.iter().filter(|&&l| l > 0.0).count(), 2);
        assert_eq!(ecmp.link_load, vec![1.0; 4]);
        assert_eq!(ecmp.traffic_hops, 4.0);
        assert_eq!(ecmp.mean_hops(), 2.0);
    }

    #[test]
    fn disconnected_demand_counted_unrouted() {
        let g: Graph<(), ()> = Graph::from_edges(4, vec![(0, 1, ()), (2, 3, ())]);
        let csr = CsrGraph::from_graph(&g);
        let mut d = vec![0.0; 16];
        d[2] = 3.0; // 0 -> 2 impossible
        d[1] = 1.0; // 0 -> 1 fine
        let dense = Dense { n: 4, d };
        for policy in [RoutePolicy::TreePath, RoutePolicy::Ecmp] {
            let loads = link_loads(&csr, &dense, policy, 3);
            assert_eq!(loads.unrouted_flows, 1);
            assert_eq!(loads.unrouted_traffic, 3.0);
            assert_eq!(loads.routed_traffic, 1.0);
        }
    }

    #[test]
    fn multi_model_matches_single_runs_bitwise() {
        let g: Graph<(), ()> = Graph::from_edges(
            7,
            vec![
                (0, 1, ()),
                (1, 2, ()),
                (2, 3, ()),
                (3, 0, ()),
                (2, 4, ()),
                (4, 5, ()),
                (5, 6, ()),
                (6, 2, ()),
            ],
        );
        let csr = CsrGraph::from_graph(&g);
        let models: Vec<DemandMatrix> = [
            DemandModel::Uniform,
            DemandModel::Gravity {
                distance_exponent: 0.0,
            },
            DemandModel::RankBiased { exponent: 1.0 },
        ]
        .into_iter()
        .map(|model| {
            DemandMatrix::build(
                &csr,
                None,
                &DemandConfig {
                    model,
                    ..DemandConfig::default()
                },
            )
        })
        .collect();
        let refs: Vec<&dyn OdDemand> = models.iter().map(|m| m as &dyn OdDemand).collect();
        for policy in [RoutePolicy::TreePath, RoutePolicy::Ecmp] {
            let multi = link_loads_multi(&csr, &refs, policy, 4);
            for (dem, got) in models.iter().zip(&multi) {
                let single = link_loads(&csr, dem, policy, 1);
                assert_eq!(&single, got, "{:?}", policy);
                // Conservation: total load equals traffic x hops.
                assert!((got.total_load() - got.traffic_hops).abs() < 1e-9 * got.traffic_hops);
            }
        }
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let g: Graph<(), ()> = Graph::from_edges(
            9,
            (0..8)
                .map(|i| (i, i + 1, ()))
                .chain([(0, 4, ()), (2, 7, ())])
                .collect::<Vec<_>>(),
        );
        let csr = CsrGraph::from_graph(&g);
        let dem = DemandMatrix::build(
            &csr,
            None,
            &DemandConfig {
                model: DemandModel::Gravity {
                    distance_exponent: 0.0,
                },
                mass_jitter: 0.4,
                seed: 5,
                ..DemandConfig::default()
            },
        );
        for policy in [RoutePolicy::TreePath, RoutePolicy::Ecmp] {
            let reference = link_loads(&csr, &dem, policy, 1);
            for threads in 2..=8 {
                let got = link_loads(&csr, &dem, policy, threads);
                let same = reference
                    .link_load
                    .iter()
                    .zip(&got.link_load)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "{:?} diverged at {} threads", policy, threads);
                assert_eq!(reference.traffic_hops.to_bits(), got.traffic_hops.to_bits());
            }
        }
    }

    #[test]
    fn unit_weights_reproduce_ecmp_bitwise() {
        let g: Graph<(), ()> = Graph::from_edges(
            9,
            (0..8)
                .map(|i| (i, i + 1, ()))
                .chain([(0, 4, ()), (2, 7, ()), (1, 6, ())])
                .collect::<Vec<_>>(),
        );
        let csr = CsrGraph::from_graph(&g);
        let dem = DemandMatrix::build(
            &csr,
            None,
            &DemandConfig {
                model: DemandModel::Gravity {
                    distance_exponent: 0.0,
                },
                mass_jitter: 0.3,
                seed: 11,
                ..DemandConfig::default()
            },
        );
        let plain = link_loads(&csr, &dem, RoutePolicy::Ecmp, 3);
        for threads in [1, 3, 8] {
            let unit = link_loads_weighted(&csr, &dem, &vec![1.0; csr.edge_count()], threads);
            assert_eq!(plain, unit, "unit weights at {} threads", threads);
        }
        // A uniform dyadic rescale (all 0.5) changes no split either:
        // every σ scales by an exact power of two that cancels.
        let halved = link_loads_weighted(&csr, &dem, &vec![0.5; csr.edge_count()], 2);
        assert_eq!(plain, halved);
    }

    #[test]
    fn weighted_split_follows_weights() {
        // Square: paths 0-1-3 (edges 0, 2) and 0-2-3 (edges 1, 3).
        let g: Graph<(), ()> =
            Graph::from_edges(4, vec![(0, 1, ()), (0, 2, ()), (1, 3, ()), (2, 3, ())]);
        let csr = CsrGraph::from_graph(&g);
        let mut d = vec![0.0; 16];
        d[3] = 4.0;
        let dense = Dense { n: 4, d };
        // Weight 3 on edge 0 makes the left path carry 3 of every 4.
        let loads = link_loads_weighted(&csr, &dense, &[3.0, 1.0, 1.0, 1.0], 1);
        assert_eq!(loads.link_load, vec![3.0, 1.0, 3.0, 1.0]);
        assert_eq!(loads.routed_traffic, 4.0);
        assert_eq!(loads.mean_hops(), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn weighted_rejects_zero_weight() {
        let (_, csr) = path4();
        let dense = Dense {
            n: 4,
            d: vec![0.0; 16],
        };
        link_loads_weighted(&csr, &dense, &[1.0, 0.0, 1.0], 1);
    }

    #[test]
    fn empty_graph_yields_empty_loads() {
        let g: Graph<(), ()> = Graph::new();
        let csr = CsrGraph::from_graph(&g);
        let dense = Dense { n: 0, d: vec![] };
        let loads = link_loads(&csr, &dense, RoutePolicy::TreePath, 4);
        assert!(loads.link_load.is_empty());
        assert_eq!(loads.routed_flows, 0);
        assert_eq!(loads.max_load(), 0.0);
        assert_eq!(loads.mean_hops(), 0.0);
    }

    #[test]
    fn naive_missing_source_tree_is_unrouted() {
        let (_, csr) = path4();
        let forest = bfs_forest(&csr, &[NodeId(0)], 1);
        let flows = vec![
            Demand {
                src: NodeId(2),
                dst: NodeId(3),
                amount: 4.0,
            },
            // Regression: an out-of-range destination is unrouted like
            // in route(), not an index panic.
            Demand {
                src: NodeId(0),
                dst: NodeId(99),
                amount: 1.5,
            },
        ];
        let out = naive_link_load(&csr, &forest, &flows);
        assert_eq!(out.unrouted_flows, 2);
        assert_eq!(out.unrouted_traffic, 5.5);
    }
}
