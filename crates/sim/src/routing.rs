//! Intradomain routing and link load.
//!
//! Routes every demand on its (deterministic) shortest path — hop-count
//! or length-weighted, the two metrics IGPs actually use — and
//! accumulates per-link loads. The load distribution is where design
//! shows: optimization-driven topologies concentrate transit on the
//! trunks they provisioned for it; degree-matched random rewirings put
//! heavy load on links that were never sized for it.

use hot_graph::csr::CsrGraph;
use hot_graph::graph::{EdgeId, Graph, NodeId};
use hot_graph::shortest_path::dijkstra;

/// The routing metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IgpMetric {
    /// Minimize hop count (every link weight 1).
    HopCount,
    /// Minimize a per-link weight supplied by the caller (usually length
    /// or inverse capacity).
    Weighted,
}

/// One demand: `amount` of traffic from `src` to `dst`.
#[derive(Clone, Copy, Debug)]
pub struct Demand {
    pub src: NodeId,
    pub dst: NodeId,
    pub amount: f64,
}

/// Result of routing a demand set.
#[derive(Clone, Debug)]
pub struct RoutingOutcome {
    /// Traffic carried by each link (indexed by `EdgeId`).
    pub link_load: Vec<f64>,
    /// Demands whose endpoints were disconnected.
    pub unrouted: Vec<Demand>,
    /// Total routed traffic × hops (for mean-hops accounting).
    pub traffic_hops: f64,
    /// Total routed traffic.
    pub routed_traffic: f64,
}

impl RoutingOutcome {
    /// Demand-weighted mean path length in hops.
    pub fn mean_hops(&self) -> f64 {
        if self.routed_traffic > 0.0 {
            self.traffic_hops / self.routed_traffic
        } else {
            0.0
        }
    }

    /// Maximum link load.
    pub fn max_load(&self) -> f64 {
        self.link_load.iter().copied().fold(0.0, f64::max)
    }

    /// Mean load over links that carry anything.
    pub fn mean_positive_load(&self) -> f64 {
        let (sum, count) = self
            .link_load
            .iter()
            .filter(|&&l| l > 0.0)
            .fold((0.0, 0usize), |(s, c), &l| (s + l, c + 1));
        if count > 0 {
            sum / count as f64
        } else {
            0.0
        }
    }

    /// Fraction of links carrying no traffic at all.
    pub fn idle_fraction(&self) -> f64 {
        if self.link_load.is_empty() {
            return 0.0;
        }
        self.link_load.iter().filter(|&&l| l == 0.0).count() as f64 / self.link_load.len() as f64
    }
}

/// Routes `demands` over `g` on shortest paths under `metric`.
///
/// `weight` is consulted only for `IgpMetric::Weighted`. Ties are broken
/// deterministically (hop-count: BFS first-discovery in adjacency order
/// on the CSR view; weighted: Dijkstra's relaxation order), so results
/// are reproducible. Runtime: one BFS or Dijkstra per distinct source —
/// the hop-count path is the one the large experiments hit, and it runs
/// on the flat [`CsrGraph`] kernel.
///
/// Degenerate demands never panic: endpoints outside the graph are
/// reported in `unrouted` alongside disconnected pairs.
pub fn route<N, E>(
    g: &Graph<N, E>,
    demands: &[Demand],
    metric: IgpMetric,
    mut weight: impl FnMut(EdgeId, &E) -> f64,
) -> RoutingOutcome {
    let n = g.node_count();
    let mut link_load = vec![0.0; g.edge_count()];
    let mut unrouted = Vec::new();
    let mut traffic_hops = 0.0;
    let mut routed_traffic = 0.0;
    // Group demands by source to reuse the per-source shortest-path runs.
    let mut by_src: std::collections::BTreeMap<u32, Vec<&Demand>> = Default::default();
    for d in demands {
        if d.src.index() >= n || d.dst.index() >= n {
            unrouted.push(*d);
            continue;
        }
        by_src.entry(d.src.0).or_default().push(d);
    }
    let csr = match metric {
        IgpMetric::HopCount => Some(CsrGraph::from_graph(g)),
        IgpMetric::Weighted => None,
    };
    for (src, group) in by_src {
        let edge_path_to: Box<dyn Fn(NodeId) -> Option<Vec<EdgeId>>> = match &csr {
            Some(csr) => {
                let tree = csr.bfs_tree(NodeId(src));
                Box::new(move |dst| tree.edge_path_to(dst))
            }
            None => {
                let sp = dijkstra(g, NodeId(src), |e, w| weight(e, w));
                Box::new(move |dst| sp.edge_path_to(dst))
            }
        };
        for d in group {
            match edge_path_to(d.dst) {
                Some(path) => {
                    for e in &path {
                        link_load[e.index()] += d.amount;
                    }
                    traffic_hops += d.amount * path.len() as f64;
                    routed_traffic += d.amount;
                }
                None => unrouted.push(*d),
            }
        }
    }
    RoutingOutcome {
        link_load,
        unrouted,
        traffic_hops,
        routed_traffic,
    }
}

/// Gini coefficient of the positive link loads — the load-concentration
/// scalar used in the experiments (0 = spread evenly, → 1 = all transit
/// on a few trunks).
pub fn load_gini(outcome: &RoutingOutcome) -> f64 {
    let positive: Vec<f64> = outcome
        .link_load
        .iter()
        .copied()
        .filter(|&l| l > 0.0)
        .collect();
    gini(&positive)
}

fn gini(sample: &[f64]) -> f64 {
    let n = sample.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_graph::graph::Graph;

    fn path4() -> Graph<(), f64> {
        Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    }

    fn d(src: usize, dst: usize, amount: f64) -> Demand {
        Demand {
            src: NodeId(src as u32),
            dst: NodeId(dst as u32),
            amount,
        }
    }

    #[test]
    fn loads_accumulate_along_paths() {
        let g = path4();
        let out = route(
            &g,
            &[d(0, 3, 5.0), d(1, 2, 2.0)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        assert_eq!(out.link_load, vec![5.0, 7.0, 5.0]);
        assert!(out.unrouted.is_empty());
        assert!((out.routed_traffic - 7.0).abs() < 1e-12);
        // hops: 5*3 + 2*1 = 17; mean = 17/7.
        assert!((out.mean_hops() - 17.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_metric_changes_route() {
        // Square with one expensive side.
        let g: Graph<(), f64> = Graph::from_edges(
            4,
            vec![(0, 1, 10.0), (1, 3, 10.0), (0, 2, 1.0), (2, 3, 1.0)],
        );
        let hop = route(&g, &[d(0, 3, 1.0)], IgpMetric::HopCount, |_, w| *w);
        let weighted = route(&g, &[d(0, 3, 1.0)], IgpMetric::Weighted, |_, w| *w);
        // Both 2-hop routes tie under hops; under weights the cheap side
        // must carry the flow.
        assert_eq!(hop.link_load.iter().filter(|&&l| l > 0.0).count(), 2);
        assert!(weighted.link_load[2] > 0.0 && weighted.link_load[3] > 0.0);
        assert_eq!(weighted.link_load[0], 0.0);
    }

    #[test]
    fn disconnected_demand_reported() {
        let g: Graph<(), f64> = Graph::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        let out = route(
            &g,
            &[d(0, 3, 4.0), d(0, 1, 1.0)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        assert_eq!(out.unrouted.len(), 1);
        assert_eq!(out.unrouted[0].amount, 4.0);
        assert!((out.routed_traffic - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_on_star_vs_path() {
        // All-pairs unit demand: the star concentrates everything on hub
        // links; gini over positive loads is 0 for symmetric star... use
        // a lopsided tree instead: hub with one long arm.
        let g = path4();
        let demands: Vec<Demand> = (0..4)
            .flat_map(|a| (0..4).filter(move |&b| b != a).map(move |b| d(a, b, 1.0)))
            .collect();
        let out = route(&g, &demands, IgpMetric::HopCount, |_, w| *w);
        // Middle link carries more than the end links.
        assert!(out.link_load[1] > out.link_load[0]);
        assert!(load_gini(&out) > 0.0);
        assert_eq!(out.idle_fraction(), 0.0);
        assert!(out.mean_positive_load() > 0.0);
    }

    /// Regression: endpoints outside the graph used to panic on the BFS
    /// distance arrays; now they land in `unrouted` like disconnected
    /// pairs — including on the empty graph.
    #[test]
    fn out_of_range_endpoints_are_unrouted_not_panics() {
        let g = path4();
        let out = route(
            &g,
            &[d(0, 9, 2.0), d(9, 0, 1.0), d(0, 3, 1.0)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        assert_eq!(out.unrouted.len(), 2);
        assert!((out.routed_traffic - 1.0).abs() < 1e-12);
        let empty: Graph<(), f64> = Graph::new();
        let out = route(&empty, &[d(0, 1, 5.0)], IgpMetric::Weighted, |_, w| *w);
        assert_eq!(out.unrouted.len(), 1);
        assert_eq!(out.routed_traffic, 0.0);
        assert!(out.link_load.is_empty());
    }

    #[test]
    fn empty_demands() {
        let g = path4();
        let out = route(&g, &[], IgpMetric::HopCount, |_, w| *w);
        assert_eq!(out.max_load(), 0.0);
        assert_eq!(out.mean_hops(), 0.0);
        assert_eq!(load_gini(&out), 0.0);
        assert_eq!(out.idle_fraction(), 1.0);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use hot_graph::graph::{Graph, NodeId};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Conservation identity: total load summed over links equals
        /// traffic × hops summed over routed demands, and nothing is
        /// unrouted on a connected graph.
        #[test]
        fn load_equals_traffic_hops(
            n in 2usize..12,
            extra in proptest::collection::vec((0usize..12, 0usize..12), 0..14),
            pairs in proptest::collection::vec((0usize..12, 0usize..12, 0.1f64..5.0), 1..10),
        ) {
            let mut g: Graph<(), f64> = Graph::new();
            for _ in 0..n {
                g.add_node(());
            }
            for i in 0..n - 1 {
                g.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 1.0);
            }
            for (a, b) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(NodeId(a as u32), NodeId(b as u32), 1.0);
                }
            }
            let demands: Vec<Demand> = pairs
                .into_iter()
                .filter(|(a, b, _)| a % n != b % n)
                .map(|(a, b, amt)| Demand {
                    src: NodeId((a % n) as u32),
                    dst: NodeId((b % n) as u32),
                    amount: amt,
                })
                .collect();
            let outcome = route(&g, &demands, IgpMetric::HopCount, |_, _| 1.0);
            prop_assert!(outcome.unrouted.is_empty());
            let total_load: f64 = outcome.link_load.iter().sum();
            prop_assert!((total_load - outcome.traffic_hops).abs() < 1e-9,
                "sum load {} vs traffic-hops {}", total_load, outcome.traffic_hops);
            // Routed traffic equals offered traffic.
            let offered: f64 = demands.iter().map(|d| d.amount).sum();
            prop_assert!((outcome.routed_traffic - offered).abs() < 1e-9);
        }
    }
}
