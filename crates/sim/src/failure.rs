//! Single-link failure response.
//!
//! For each candidate link: remove it, re-route the demands that used it,
//! and measure what the network pays — extra hops (stretch) and traffic
//! that cannot be re-routed at all. This quantifies what the paper's
//! footnote 7 redundancy requirement buys: on a tree every failure
//! strands traffic; on the 2-edge-connected backbone everything re-routes
//! at modest stretch.

use crate::routing::{route, Demand, IgpMetric};
use hot_graph::csr::{CsrBfsTree, CsrGraph};
use hot_graph::graph::{EdgeId, Graph, NodeId};
use std::collections::BTreeMap;

/// Impact of one link's failure.
#[derive(Clone, Debug)]
pub struct FailureImpact {
    /// The failed link.
    pub link: EdgeId,
    /// Traffic that used the link before the failure.
    pub affected_traffic: f64,
    /// Traffic stranded (no alternative path).
    pub stranded_traffic: f64,
    /// Demand-weighted mean hops of re-routed traffic, after / before.
    pub stretch: f64,
    /// Peak link load after re-routing (where the displaced traffic
    /// lands — the redistribution measurement E16 reports).
    pub max_load_after: f64,
}

/// Summary over all simulated failures.
#[derive(Clone, Debug)]
pub struct FailureSummary {
    /// Per-link impacts, ordered by edge id (only links that carried
    /// traffic are simulated; idle links have trivially no impact).
    pub impacts: Vec<FailureImpact>,
    /// Fraction of simulated failures that stranded any traffic.
    pub stranding_fraction: f64,
    /// Worst single-failure stranded traffic, as a fraction of total.
    pub worst_stranded_fraction: f64,
    /// Mean stretch over failures that re-routed everything.
    pub mean_stretch: f64,
    /// Worst post-failure peak link load relative to the baseline peak
    /// (1.0 when nothing was simulated or the baseline was idle).
    pub max_load_amplification: f64,
}

impl FailureSummary {
    /// The summary of a study with nothing to simulate (no links, no
    /// demands, or nothing loaded).
    fn trivial() -> FailureSummary {
        FailureSummary {
            impacts: Vec::new(),
            stranding_fraction: 0.0,
            worst_stranded_fraction: 0.0,
            mean_stretch: 1.0,
            max_load_amplification: 1.0,
        }
    }
}

/// The per-cut numbers the summary consumes, produced either by the
/// cached hop-count fast path or the per-cut `route` fallback.
struct CutOutcome {
    stranded: f64,
    routed_traffic: f64,
    traffic_hops: f64,
    max_load_after: f64,
}

/// Shared state for hop-count cuts: the demand gather (out-of-range
/// amounts plus per-source groups) and every source's intact-graph BFS
/// tree are computed once. A cut only invalidates the trees that used
/// the failed edge — `edge_users` records which — so each simulated
/// failure re-runs BFS for those sources alone, on an edge-masked view,
/// and replays the cached trees for everyone else. Because
/// [`CsrGraph::edge_masked`] equals `edge_subgraph` + `from_graph` edge
/// ids included, and removing a non-tree edge cannot change a BFS
/// first-discovery tree, every path — and therefore every load, hop,
/// and stranded sum, accumulated in the same order — is bit-identical
/// to the full per-cut re-route this replaces.
struct HopCutCache<'a> {
    csr: CsrGraph,
    /// Sum of demands with endpoints outside the graph, which every cut
    /// reports as stranded (matching `route`'s accounting).
    base_stranded: f64,
    /// In-range demands grouped by source, ascending — the order the
    /// flat `route` accumulates in.
    by_src: Vec<(u32, Vec<&'a Demand>)>,
    /// Intact-graph BFS tree per `by_src` entry.
    trees: Vec<CsrBfsTree>,
    /// For each edge, the sources (ascending) whose baseline tree uses
    /// it as a parent edge.
    edge_users: Vec<Vec<u32>>,
    scratch: CsrBfsTree,
    alive: Vec<bool>,
}

impl<'a> HopCutCache<'a> {
    fn new<N, E>(g: &Graph<N, E>, demands: &'a [Demand]) -> HopCutCache<'a> {
        let csr = CsrGraph::from_graph(g);
        let n = csr.node_count();
        let mut out_of_range = 0.0f64;
        let mut groups: BTreeMap<u32, Vec<&Demand>> = BTreeMap::new();
        for d in demands {
            if d.src.index() >= n || d.dst.index() >= n {
                out_of_range += d.amount;
            } else {
                groups.entry(d.src.0).or_default().push(d);
            }
        }
        let by_src: Vec<(u32, Vec<&Demand>)> = groups.into_iter().collect();
        let mut edge_users = vec![Vec::new(); csr.edge_count()];
        let mut trees = Vec::with_capacity(by_src.len());
        for (src, _) in &by_src {
            let tree = csr.bfs_tree(NodeId(*src));
            for &v in tree.visit_order() {
                if let Some((_, e)) = tree.parent(v) {
                    edge_users[e.index()].push(*src);
                }
            }
            trees.push(tree);
        }
        HopCutCache {
            base_stranded: out_of_range,
            scratch: CsrBfsTree::sized(n),
            alive: vec![true; csr.edge_count()],
            csr,
            by_src,
            trees,
            edge_users,
        }
    }

    fn fail(&mut self, link: EdgeId) -> CutOutcome {
        self.alive[link.index()] = false;
        let (masked, new_to_old) = self.csr.edge_masked(&self.alive);
        self.alive[link.index()] = true;
        let users = &self.edge_users[link.index()];
        let mut loads = vec![0.0f64; self.csr.edge_count()];
        let mut stranded = self.base_stranded;
        let mut traffic_hops = 0.0;
        let mut routed_traffic = 0.0;
        for (i, (src, group)) in self.by_src.iter().enumerate() {
            let affected = users.binary_search(src).is_ok();
            if affected {
                masked.bfs_tree_into(NodeId(*src), &mut self.scratch);
            }
            let tree = if affected {
                &self.scratch
            } else {
                &self.trees[i]
            };
            for d in group {
                match tree.edge_path_to(d.dst) {
                    Some(path) => {
                        for e in &path {
                            // The cached trees carry original edge ids;
                            // the masked re-BFS carries masked ids.
                            let orig = if affected {
                                new_to_old[e.index()].index()
                            } else {
                                e.index()
                            };
                            loads[orig] += d.amount;
                        }
                        traffic_hops += d.amount * path.len() as f64;
                        routed_traffic += d.amount;
                    }
                    None => stranded += d.amount,
                }
            }
        }
        CutOutcome {
            stranded,
            routed_traffic,
            traffic_hops,
            max_load_after: loads.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// Simulates every loaded link's failure independently.
///
/// `metric`/`weight` must match the routing that produced normal
/// operation (they are re-run internally). Hop-count cuts share one
/// demand gather and a BFS-forest cache across all failures, re-running
/// BFS only for the sources whose intact-graph tree used the failed
/// edge (see [`HopCutCache`]); the weighted metric falls back to one
/// full routing pass per loaded link. Degenerate inputs (no links, no
/// demands, endpoints outside the graph) produce a trivial summary
/// instead of panicking.
pub fn single_link_failures<N: Clone, E: Clone>(
    g: &Graph<N, E>,
    demands: &[Demand],
    metric: IgpMetric,
    weight: impl Fn(EdgeId, &E) -> f64 + Copy,
) -> FailureSummary {
    if g.edge_count() == 0 || demands.is_empty() {
        return FailureSummary::trivial();
    }
    let baseline = route(g, demands, metric, weight);
    let baseline_max = baseline.max_load();
    let total_traffic: f64 = demands.iter().map(|d| d.amount).sum();
    let mut hop_cache = match metric {
        IgpMetric::HopCount => Some(HopCutCache::new(g, demands)),
        IgpMetric::Weighted => None,
    };
    let mut impacts = Vec::new();
    let mut stranded_failures = 0usize;
    let mut worst_stranded = 0.0f64;
    let mut worst_max_after = 0.0f64;
    let mut stretch_sum = 0.0;
    let mut stretch_count = 0usize;
    for link in g.edge_ids() {
        if baseline.link_load[link.index()] <= 0.0 {
            continue;
        }
        let outcome = match &mut hop_cache {
            Some(cache) => cache.fail(link),
            None => {
                // Fail the link and re-route everything from scratch.
                let mut keep = vec![true; g.edge_count()];
                keep[link.index()] = false;
                let failed = g.edge_subgraph(&keep);
                // Indexing note: edge_subgraph preserves node ids but
                // renumbers edges; demands reference nodes only, so
                // routing is unaffected.
                let o = route(&failed, demands, metric, |_, w| {
                    // EdgeIds differ in the subgraph; the weight closure
                    // gets the subgraph's ids, which we cannot map back —
                    // so only annotation-derived weights are meaningful
                    // here. All workspace weights are annotation-derived.
                    weight(EdgeId(0), w)
                });
                CutOutcome {
                    stranded: o.unrouted.iter().map(|d| d.amount).sum(),
                    routed_traffic: o.routed_traffic,
                    traffic_hops: o.traffic_hops,
                    max_load_after: o.max_load(),
                }
            }
        };
        let affected = baseline.link_load[link.index()];
        let stranded = outcome.stranded;
        let stretch = if outcome.routed_traffic > 0.0 && baseline.routed_traffic > 0.0 {
            (outcome.traffic_hops / outcome.routed_traffic) / baseline.mean_hops()
        } else {
            1.0
        };
        let max_load_after = outcome.max_load_after;
        worst_max_after = worst_max_after.max(max_load_after);
        if stranded > 0.0 {
            stranded_failures += 1;
            if total_traffic > 0.0 {
                worst_stranded = worst_stranded.max(stranded / total_traffic);
            }
        } else {
            stretch_sum += stretch;
            stretch_count += 1;
        }
        impacts.push(FailureImpact {
            link,
            affected_traffic: affected,
            stranded_traffic: stranded,
            stretch,
            max_load_after,
        });
    }
    let simulated = impacts.len().max(1);
    FailureSummary {
        stranding_fraction: stranded_failures as f64 / simulated as f64,
        worst_stranded_fraction: worst_stranded,
        mean_stretch: if stretch_count > 0 {
            stretch_sum / stretch_count as f64
        } else {
            1.0
        },
        max_load_amplification: if !impacts.is_empty() && baseline_max > 0.0 {
            worst_max_after / baseline_max
        } else {
            1.0
        },
        impacts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_graph::graph::{Graph, NodeId};

    fn d(src: usize, dst: usize, amount: f64) -> Demand {
        Demand {
            src: NodeId(src as u32),
            dst: NodeId(dst as u32),
            amount,
        }
    }

    #[test]
    fn tree_strands_every_failure() {
        // Path 0-1-2 with end-to-end demand: both links are cuts.
        let g: Graph<(), f64> = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let summary = single_link_failures(&g, &[d(0, 2, 3.0)], IgpMetric::HopCount, |_, w| *w);
        assert_eq!(summary.impacts.len(), 2);
        assert!((summary.stranding_fraction - 1.0).abs() < 1e-12);
        assert!((summary.worst_stranded_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_reroutes_everything() {
        let g: Graph<(), f64> =
            Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let summary = single_link_failures(
            &g,
            &[d(0, 1, 1.0), d(1, 3, 1.0)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        assert_eq!(summary.stranding_fraction, 0.0);
        // Re-routing around a 4-cycle costs extra hops.
        assert!(summary.mean_stretch > 1.0);
        assert!(summary.worst_stranded_fraction == 0.0);
    }

    #[test]
    fn idle_links_not_simulated() {
        // Triangle but demand only between 0 and 1: edge (1,2)/(0,2)
        // carry nothing under shortest path.
        let g: Graph<(), f64> = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let summary = single_link_failures(&g, &[d(0, 1, 1.0)], IgpMetric::HopCount, |_, w| *w);
        assert_eq!(summary.impacts.len(), 1);
        assert_eq!(summary.impacts[0].link, hot_graph::graph::EdgeId(0));
        // The failure re-routes via node 2 at stretch 2.
        assert_eq!(summary.stranding_fraction, 0.0);
        assert!((summary.impacts[0].stretch - 2.0).abs() < 1e-12);
    }

    /// Regression: the degenerate inputs — empty graph, no demands, a
    /// demand whose endpoints are outside the graph, and a disconnected
    /// OD pair already stranded at baseline — all produce a clean
    /// summary instead of a panic.
    #[test]
    fn degenerate_inputs_are_trivial_not_panics() {
        let empty: Graph<(), f64> = Graph::new();
        let s = single_link_failures(&empty, &[d(0, 1, 1.0)], IgpMetric::HopCount, |_, w| *w);
        assert!(s.impacts.is_empty());
        assert_eq!(s.max_load_amplification, 1.0);
        let g: Graph<(), f64> = Graph::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        let s = single_link_failures(&g, &[], IgpMetric::HopCount, |_, w| *w);
        assert!(s.impacts.is_empty());
        assert_eq!(s.mean_stretch, 1.0);
        // Out-of-range endpoints and a disconnected baseline pair ride
        // along with one routable demand.
        let s = single_link_failures(
            &g,
            &[d(0, 9, 1.0), d(0, 3, 2.0), d(0, 1, 1.0)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        assert_eq!(s.impacts.len(), 1); // only link (0,1) carries traffic
        assert!((s.stranding_fraction - 1.0).abs() < 1e-12); // it is a cut
    }

    /// Redistribution accounting: on a 4-cycle with one demand, failing
    /// the direct link pushes the same traffic onto the 3-hop detour, so
    /// the post-failure peak equals the baseline peak (amplification 1)
    /// and every impact records where the load landed.
    #[test]
    fn load_redistribution_recorded() {
        let g: Graph<(), f64> =
            Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let s = single_link_failures(&g, &[d(0, 1, 2.0)], IgpMetric::HopCount, |_, w| *w);
        assert_eq!(s.impacts.len(), 1);
        assert!((s.impacts[0].max_load_after - 2.0).abs() < 1e-12);
        assert!((s.max_load_amplification - 1.0).abs() < 1e-12);
        // Two demands sharing a link: failing it doubles up the detour.
        let s = single_link_failures(
            &g,
            &[d(0, 1, 2.0), d(3, 1, 1.0)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        assert!(s.max_load_amplification > 1.0);
    }

    /// Regression for the BFS-forest cache: the cached fast path must
    /// reproduce the old algorithm — one full `route` on an
    /// `edge_subgraph` per loaded link — bit for bit, on a meshy
    /// multigraph with cuts, detours, out-of-range endpoints, and a
    /// disconnected pair. Every impact field and summary scalar is
    /// compared on exact bits.
    #[test]
    fn cached_cuts_match_full_reroute_bitwise() {
        // Ladder + chords + a stub island (node 29 attached by a cut
        // edge, node 30 isolated): mixes re-routable and stranding cuts.
        let n = 31usize;
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..28 {
            edges.push((i, i + 1, 1.0 + (i % 3) as f64));
        }
        for i in (0..24).step_by(4) {
            edges.push((i, i + 5, 2.0));
        }
        for i in (1..20).step_by(7) {
            edges.push((i, i + 9, 1.5));
        }
        edges.push((3, 29, 1.0)); // cut edge to a leaf
        let g: Graph<(), f64> = Graph::from_edges(n, edges);
        let mut demands = vec![d(0, 40, 1.0)]; // out-of-range endpoint
        demands.push(d(5, 30, 2.0)); // disconnected at baseline
        for s in 0..12 {
            for t in [14, 22, 28, 29] {
                demands.push(d(s, t, 1.0 + ((s * 5 + t) % 4) as f64));
            }
        }
        for metric in [IgpMetric::HopCount, IgpMetric::Weighted] {
            let fast = single_link_failures(&g, &demands, metric, |_, w| *w);
            let slow = reference_single_link_failures(&g, &demands, metric, |_, w| *w);
            assert_eq!(fast.impacts.len(), slow.impacts.len());
            assert!(!fast.impacts.is_empty());
            for (a, b) in fast.impacts.iter().zip(&slow.impacts) {
                assert_eq!(a.link, b.link);
                for (x, y) in [
                    (a.affected_traffic, b.affected_traffic),
                    (a.stranded_traffic, b.stranded_traffic),
                    (a.stretch, b.stretch),
                    (a.max_load_after, b.max_load_after),
                ] {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "link {:?}: {} vs {}",
                        a.link,
                        x,
                        y
                    );
                }
            }
            for (x, y) in [
                (fast.stranding_fraction, slow.stranding_fraction),
                (fast.worst_stranded_fraction, slow.worst_stranded_fraction),
                (fast.mean_stretch, slow.mean_stretch),
                (fast.max_load_amplification, slow.max_load_amplification),
            ] {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// The pre-cache algorithm, verbatim: one full routing pass over an
    /// `edge_subgraph` per loaded link.
    fn reference_single_link_failures<N: Clone, E: Clone>(
        g: &Graph<N, E>,
        demands: &[Demand],
        metric: IgpMetric,
        weight: impl Fn(EdgeId, &E) -> f64 + Copy,
    ) -> FailureSummary {
        if g.edge_count() == 0 || demands.is_empty() {
            return FailureSummary::trivial();
        }
        let baseline = route(g, demands, metric, weight);
        let baseline_max = baseline.max_load();
        let total_traffic: f64 = demands.iter().map(|d| d.amount).sum();
        let mut impacts = Vec::new();
        let mut stranded_failures = 0usize;
        let mut worst_stranded = 0.0f64;
        let mut worst_max_after = 0.0f64;
        let mut stretch_sum = 0.0;
        let mut stretch_count = 0usize;
        for link in g.edge_ids() {
            if baseline.link_load[link.index()] <= 0.0 {
                continue;
            }
            let mut keep = vec![true; g.edge_count()];
            keep[link.index()] = false;
            let failed = g.edge_subgraph(&keep);
            let outcome = route(&failed, demands, metric, |_, w| weight(EdgeId(0), w));
            let affected = baseline.link_load[link.index()];
            let stranded: f64 = outcome.unrouted.iter().map(|d| d.amount).sum();
            let stretch = if outcome.routed_traffic > 0.0 && baseline.routed_traffic > 0.0 {
                outcome.mean_hops() / baseline.mean_hops()
            } else {
                1.0
            };
            let max_load_after = outcome.max_load();
            worst_max_after = worst_max_after.max(max_load_after);
            if stranded > 0.0 {
                stranded_failures += 1;
                if total_traffic > 0.0 {
                    worst_stranded = worst_stranded.max(stranded / total_traffic);
                }
            } else {
                stretch_sum += stretch;
                stretch_count += 1;
            }
            impacts.push(FailureImpact {
                link,
                affected_traffic: affected,
                stranded_traffic: stranded,
                stretch,
                max_load_after,
            });
        }
        let simulated = impacts.len().max(1);
        FailureSummary {
            stranding_fraction: stranded_failures as f64 / simulated as f64,
            worst_stranded_fraction: worst_stranded,
            mean_stretch: if stretch_count > 0 {
                stretch_sum / stretch_count as f64
            } else {
                1.0
            },
            max_load_amplification: if !impacts.is_empty() && baseline_max > 0.0 {
                worst_max_after / baseline_max
            } else {
                1.0
            },
            impacts,
        }
    }

    #[test]
    fn affected_traffic_recorded() {
        let g: Graph<(), f64> = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let summary = single_link_failures(
            &g,
            &[d(0, 2, 2.0), d(1, 2, 1.5)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        let link1 = summary
            .impacts
            .iter()
            .find(|i| i.link.index() == 1)
            .unwrap();
        assert!((link1.affected_traffic - 3.5).abs() < 1e-12);
    }
}
