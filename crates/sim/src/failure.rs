//! Single-link failure response.
//!
//! For each candidate link: remove it, re-route the demands that used it,
//! and measure what the network pays — extra hops (stretch) and traffic
//! that cannot be re-routed at all. This quantifies what the paper's
//! footnote 7 redundancy requirement buys: on a tree every failure
//! strands traffic; on the 2-edge-connected backbone everything re-routes
//! at modest stretch.

use crate::routing::{route, Demand, IgpMetric};
use hot_graph::graph::{EdgeId, Graph};

/// Impact of one link's failure.
#[derive(Clone, Debug)]
pub struct FailureImpact {
    /// The failed link.
    pub link: EdgeId,
    /// Traffic that used the link before the failure.
    pub affected_traffic: f64,
    /// Traffic stranded (no alternative path).
    pub stranded_traffic: f64,
    /// Demand-weighted mean hops of re-routed traffic, after / before.
    pub stretch: f64,
    /// Peak link load after re-routing (where the displaced traffic
    /// lands — the redistribution measurement E16 reports).
    pub max_load_after: f64,
}

/// Summary over all simulated failures.
#[derive(Clone, Debug)]
pub struct FailureSummary {
    /// Per-link impacts, ordered by edge id (only links that carried
    /// traffic are simulated; idle links have trivially no impact).
    pub impacts: Vec<FailureImpact>,
    /// Fraction of simulated failures that stranded any traffic.
    pub stranding_fraction: f64,
    /// Worst single-failure stranded traffic, as a fraction of total.
    pub worst_stranded_fraction: f64,
    /// Mean stretch over failures that re-routed everything.
    pub mean_stretch: f64,
    /// Worst post-failure peak link load relative to the baseline peak
    /// (1.0 when nothing was simulated or the baseline was idle).
    pub max_load_amplification: f64,
}

impl FailureSummary {
    /// The summary of a study with nothing to simulate (no links, no
    /// demands, or nothing loaded).
    fn trivial() -> FailureSummary {
        FailureSummary {
            impacts: Vec::new(),
            stranding_fraction: 0.0,
            worst_stranded_fraction: 0.0,
            mean_stretch: 1.0,
            max_load_amplification: 1.0,
        }
    }
}

/// Simulates every loaded link's failure independently.
///
/// `metric`/`weight` must match the routing that produced normal
/// operation (they are re-run internally). Runtime is one full routing
/// pass per loaded link — fine for backbone-scale graphs. Degenerate
/// inputs (no links, no demands, endpoints outside the graph) produce a
/// trivial summary instead of panicking.
pub fn single_link_failures<N: Clone, E: Clone>(
    g: &Graph<N, E>,
    demands: &[Demand],
    metric: IgpMetric,
    weight: impl Fn(EdgeId, &E) -> f64 + Copy,
) -> FailureSummary {
    if g.edge_count() == 0 || demands.is_empty() {
        return FailureSummary::trivial();
    }
    let baseline = route(g, demands, metric, weight);
    let baseline_max = baseline.max_load();
    let total_traffic: f64 = demands.iter().map(|d| d.amount).sum();
    let mut impacts = Vec::new();
    let mut stranded_failures = 0usize;
    let mut worst_stranded = 0.0f64;
    let mut worst_max_after = 0.0f64;
    let mut stretch_sum = 0.0;
    let mut stretch_count = 0usize;
    for link in g.edge_ids() {
        if baseline.link_load[link.index()] <= 0.0 {
            continue;
        }
        // Fail the link.
        let mut keep = vec![true; g.edge_count()];
        keep[link.index()] = false;
        let failed = g.edge_subgraph(&keep);
        // Indexing note: edge_subgraph preserves node ids but renumbers
        // edges; demands reference nodes only, so routing is unaffected.
        let outcome = route(&failed, demands, metric, |_, w| {
            // EdgeIds differ in the subgraph; the weight closure gets the
            // subgraph's ids, which we cannot map back — so only
            // annotation-derived weights are meaningful here. All
            // workspace weights are annotation-derived.
            weight(EdgeId(0), w)
        });
        let affected = baseline.link_load[link.index()];
        let stranded: f64 = outcome.unrouted.iter().map(|d| d.amount).sum();
        let stretch = if outcome.routed_traffic > 0.0 && baseline.routed_traffic > 0.0 {
            outcome.mean_hops() / baseline.mean_hops()
        } else {
            1.0
        };
        let max_load_after = outcome.max_load();
        worst_max_after = worst_max_after.max(max_load_after);
        if stranded > 0.0 {
            stranded_failures += 1;
            if total_traffic > 0.0 {
                worst_stranded = worst_stranded.max(stranded / total_traffic);
            }
        } else {
            stretch_sum += stretch;
            stretch_count += 1;
        }
        impacts.push(FailureImpact {
            link,
            affected_traffic: affected,
            stranded_traffic: stranded,
            stretch,
            max_load_after,
        });
    }
    let simulated = impacts.len().max(1);
    FailureSummary {
        stranding_fraction: stranded_failures as f64 / simulated as f64,
        worst_stranded_fraction: worst_stranded,
        mean_stretch: if stretch_count > 0 {
            stretch_sum / stretch_count as f64
        } else {
            1.0
        },
        max_load_amplification: if !impacts.is_empty() && baseline_max > 0.0 {
            worst_max_after / baseline_max
        } else {
            1.0
        },
        impacts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_graph::graph::{Graph, NodeId};

    fn d(src: usize, dst: usize, amount: f64) -> Demand {
        Demand {
            src: NodeId(src as u32),
            dst: NodeId(dst as u32),
            amount,
        }
    }

    #[test]
    fn tree_strands_every_failure() {
        // Path 0-1-2 with end-to-end demand: both links are cuts.
        let g: Graph<(), f64> = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let summary = single_link_failures(&g, &[d(0, 2, 3.0)], IgpMetric::HopCount, |_, w| *w);
        assert_eq!(summary.impacts.len(), 2);
        assert!((summary.stranding_fraction - 1.0).abs() < 1e-12);
        assert!((summary.worst_stranded_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_reroutes_everything() {
        let g: Graph<(), f64> =
            Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let summary = single_link_failures(
            &g,
            &[d(0, 1, 1.0), d(1, 3, 1.0)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        assert_eq!(summary.stranding_fraction, 0.0);
        // Re-routing around a 4-cycle costs extra hops.
        assert!(summary.mean_stretch > 1.0);
        assert!(summary.worst_stranded_fraction == 0.0);
    }

    #[test]
    fn idle_links_not_simulated() {
        // Triangle but demand only between 0 and 1: edge (1,2)/(0,2)
        // carry nothing under shortest path.
        let g: Graph<(), f64> = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let summary = single_link_failures(&g, &[d(0, 1, 1.0)], IgpMetric::HopCount, |_, w| *w);
        assert_eq!(summary.impacts.len(), 1);
        assert_eq!(summary.impacts[0].link, hot_graph::graph::EdgeId(0));
        // The failure re-routes via node 2 at stretch 2.
        assert_eq!(summary.stranding_fraction, 0.0);
        assert!((summary.impacts[0].stretch - 2.0).abs() < 1e-12);
    }

    /// Regression: the degenerate inputs — empty graph, no demands, a
    /// demand whose endpoints are outside the graph, and a disconnected
    /// OD pair already stranded at baseline — all produce a clean
    /// summary instead of a panic.
    #[test]
    fn degenerate_inputs_are_trivial_not_panics() {
        let empty: Graph<(), f64> = Graph::new();
        let s = single_link_failures(&empty, &[d(0, 1, 1.0)], IgpMetric::HopCount, |_, w| *w);
        assert!(s.impacts.is_empty());
        assert_eq!(s.max_load_amplification, 1.0);
        let g: Graph<(), f64> = Graph::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        let s = single_link_failures(&g, &[], IgpMetric::HopCount, |_, w| *w);
        assert!(s.impacts.is_empty());
        assert_eq!(s.mean_stretch, 1.0);
        // Out-of-range endpoints and a disconnected baseline pair ride
        // along with one routable demand.
        let s = single_link_failures(
            &g,
            &[d(0, 9, 1.0), d(0, 3, 2.0), d(0, 1, 1.0)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        assert_eq!(s.impacts.len(), 1); // only link (0,1) carries traffic
        assert!((s.stranding_fraction - 1.0).abs() < 1e-12); // it is a cut
    }

    /// Redistribution accounting: on a 4-cycle with one demand, failing
    /// the direct link pushes the same traffic onto the 3-hop detour, so
    /// the post-failure peak equals the baseline peak (amplification 1)
    /// and every impact records where the load landed.
    #[test]
    fn load_redistribution_recorded() {
        let g: Graph<(), f64> =
            Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let s = single_link_failures(&g, &[d(0, 1, 2.0)], IgpMetric::HopCount, |_, w| *w);
        assert_eq!(s.impacts.len(), 1);
        assert!((s.impacts[0].max_load_after - 2.0).abs() < 1e-12);
        assert!((s.max_load_amplification - 1.0).abs() < 1e-12);
        // Two demands sharing a link: failing it doubles up the detour.
        let s = single_link_failures(
            &g,
            &[d(0, 1, 2.0), d(3, 1, 1.0)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        assert!(s.max_load_amplification > 1.0);
    }

    #[test]
    fn affected_traffic_recorded() {
        let g: Graph<(), f64> = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let summary = single_link_failures(
            &g,
            &[d(0, 2, 2.0), d(1, 2, 1.5)],
            IgpMetric::HopCount,
            |_, w| *w,
        );
        let link1 = summary
            .impacts
            .iter()
            .find(|i| i.link.index() == 1)
            .unwrap();
        assert!((link1.affected_traffic - 3.5).abs() < 1e-12);
    }
}
