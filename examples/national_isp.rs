//! National ISP: the paper's §2.2 pipeline end to end — census, gravity
//! demand, backbone + metro + access design — under both formulations.
//!
//! ```text
//! cargo run --release --example national_isp
//! ```

use hotgen::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Geography: 50 Zipf-ranked cities clustered into metro corridors.
    let census = Census::synthesize(
        &CensusConfig {
            n_cities: 50,
            ..CensusConfig::default()
        },
        &mut StdRng::seed_from_u64(3),
    );
    let traffic = TrafficMatrix::gravity(&census, &GravityConfig::default());
    println!(
        "census: {} cities, top city population {:.0}",
        census.cities.len(),
        census.cities[0].population
    );
    let heaviest = traffic.ranked_pairs()[0];
    println!(
        "heaviest traffic pair: city {} <-> city {} ({:.0} units)",
        heaviest.0, heaviest.1, heaviest.2
    );
    for formulation in [
        Formulation::CostBased,
        Formulation::ProfitBased {
            revenue: RevenueModel::PerUnitDemand {
                base: 250.0,
                per_unit: 15.0,
            },
        },
    ] {
        let config = IspConfig {
            n_pops: 10,
            total_customers: 1000,
            formulation,
            ..IspConfig::default()
        };
        let isp = generate_isp(&census, &traffic, &config, &mut StdRng::seed_from_u64(4));
        println!("\n=== {} ISP ===", formulation.name());
        println!(
            "{} routers ({} backbone, {} distribution, {} customers), {} links, {:.0} fiber-km",
            isp.graph.node_count(),
            isp.count_role(RouterRole::Backbone),
            isp.count_role(RouterRole::Distribution),
            isp.count_role(RouterRole::Customer),
            isp.graph.edge_count(),
            isp.total_length()
        );
        if isp.rejected_customers > 0 {
            println!(
                "{} customers were unprofitable and not served",
                isp.rejected_customers
            );
        }
        let report = MetricReport::compute(formulation.name(), &isp.graph);
        println!("{}", MetricReport::table(std::slice::from_ref(&report)));
    }
    println!(
        "note how hierarchy (backbone/distribution/access) emerged from \
         three optimization problems — nowhere did we impose a degree \
         distribution or a level structure on the graph itself."
    );
}
