//! Access design deep-dive: solve one metro with every algorithm in the
//! buy-at-bulk toolbox and export the winner as Graphviz DOT.
//!
//! ```text
//! cargo run --release --example access_design > metro.dot
//! dot -Tsvg metro.dot -o metro.svg   # if graphviz is installed
//! ```
//! (The comparison table goes to stderr so stdout stays a clean DOT file.)

use hotgen::core::buyatbulk::{exact, greedy, mmp};
use hotgen::graph::io::to_dot;
use hotgen::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let cost = LinkCost::cables_only(CableCatalog::realistic_2003());
    // Small enough that the exact solver can join the comparison.
    let tiny = Instance::random_uniform(7, 30.0, cost.clone(), &mut rng);
    eprintln!("--- 7-customer instance (exact optimum available) ---");
    let (opt_sol, opt) = exact::solve(&tiny);
    for (name, c) in [
        ("exact", opt),
        ("star", greedy::star(&tiny).total_cost(&tiny)),
        ("mst-route", greedy::mst_route(&tiny).total_cost(&tiny)),
        ("mmp", mmp::solve(&tiny, &mut rng).total_cost(&tiny)),
        (
            "mmp+ls",
            greedy::mmp_plus_improve(&tiny, &mut rng, 500).final_cost,
        ),
    ] {
        eprintln!("{:<10} cost {:>8.2}  ratio {:.3}", name, c, c / opt);
    }
    let _ = opt_sol;

    // A realistic metro for the DOT export.
    let metro = Instance::random_uniform(80, 20.0, cost, &mut rng);
    let solution = greedy::mmp_plus_improve(&metro, &mut rng, 2000).solution;
    let cables = solution.cable_assignments(&metro);
    let flows = solution.uplink_flows(&metro);
    eprintln!("\n--- 80-customer metro: DOT on stdout ---");
    let graph = solution.to_graph(&metro);
    let dot = to_dot(
        &graph,
        |v, _| {
            let p = metro.node_point(v.index());
            if v.index() == 0 {
                format!(
                    "label=\"CO\", shape=doublecircle, pos=\"{:.3},{:.3}!\"",
                    p.x * 10.0,
                    p.y * 10.0
                )
            } else {
                format!(
                    "label=\"\", shape=point, pos=\"{:.3},{:.3}!\"",
                    p.x * 10.0,
                    p.y * 10.0
                )
            }
        },
        |e, _| {
            // Label trunk edges with their cable type; find the child node
            // of this edge (to_graph emits child->parent in child order).
            let (child, _) = graph.edge_endpoints(e);
            let v = child.index();
            let (cable_idx, _) = cables[v];
            let name = metro.cost.catalog.types()[cable_idx].name;
            if flows[v] > 100.0 {
                format!("label=\"{}\", penwidth=2", name)
            } else {
                String::new()
            }
        },
    );
    println!("{}", dot);
}
