//! Large scale: generate and analyze a ~100k-router Internet end to end.
//!
//! The seed experiments run at ~1k–3k nodes; this example is the
//! production-scale path the CSR kernels exist for. It runs the paper's
//! full pipeline — census, gravity traffic, ~100 economics-designed ISPs
//! with Zipf footprints, peering — into one combined router graph of
//! roughly 100,000 nodes, builds the flat [`CsrGraph`] view once, and
//! runs the whole-graph analytics (sampled path metrics, the E10
//! robust-yet-fragile sweep, trunk betweenness, hop-count routing), each
//! on the parallel kernels, printing wall-clock per stage.
//!
//! Runs in a couple of minutes on a laptop core; scales down with the
//! thread count of course:
//!
//! ```text
//! cargo run --release --example large_scale
//! ```

use hotgen::graph::csr::CsrGraph;
use hotgen::graph::parallel::{default_threads, par_betweenness};
use hotgen::metrics::paths::path_metrics;
use hotgen::metrics::robustness::{degradation_curve, robustness_score, RemovalPolicy};
use hotgen::prelude::*;
use hotgen::sim::routing::{load_gini, route, Demand, IgpMetric};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    println!("{:<44} {:>9.2} s", label, t0.elapsed().as_secs_f64());
    out
}

fn main() {
    let threads = default_threads();
    println!("worker threads: {}", threads);

    // Geography: 120 Zipf cities shared by every ISP.
    let census = Census::synthesize(
        &CensusConfig {
            n_cities: 120,
            ..CensusConfig::default()
        },
        &mut StdRng::seed_from_u64(42),
    );
    let traffic = TrafficMatrix::gravity(&census, &GravityConfig::default());
    // 100 ISPs with Zipf footprints: the largest runs 24 POPs × 490
    // customers; summed over the economy the combined router graph lands
    // just above 100k nodes.
    let config = InternetConfig {
        n_isps: 100,
        max_pops: 24,
        customers_per_pop: 490,
        ..InternetConfig::default()
    };
    let net = timed("generate internet (100 ISPs + peering)", || {
        generate_internet(&census, &traffic, &config, &mut StdRng::seed_from_u64(43))
    });
    let g = timed("combine router graphs (degree-capped)", || {
        net.combined_router_graph()
    });
    println!(
        "topology: {} routers, {} links, {} peering links, max degree {}",
        g.node_count(),
        g.edge_count(),
        net.peering.len(),
        g.degree_sequence().into_iter().max().unwrap_or(0)
    );

    // One O(n + m) pass over the combined graph.
    let csr = timed("build CsrGraph view", || CsrGraph::from_graph(&g));
    println!(
        "  giant component: {:.1}% of routers",
        100.0 * csr.largest_component_size() as f64 / csr.node_count() as f64
    );

    let paths = timed("path metrics (sampled BFS sweep)", || path_metrics(&g));
    println!(
        "  mean distance {:.2} hops, diameter >= {}, exact={}",
        paths.mean_distance, paths.diameter, paths.exact
    );

    // E10 at scale: the masked-BFS sweep never copies the graph.
    let fractions = [0.01, 0.02, 0.05, 0.1];
    let random = timed("degradation curve (random failure)", || {
        degradation_curve(
            &g,
            RemovalPolicy::RandomFailure,
            &fractions,
            &mut StdRng::seed_from_u64(44),
            threads,
        )
    });
    let attack = timed("degradation curve (degree attack)", || {
        degradation_curve(
            &g,
            RemovalPolicy::DegreeAttack,
            &fractions,
            &mut StdRng::seed_from_u64(44),
            threads,
        )
    });
    println!(
        "  robustness score: random {:.3} vs attack {:.3} (robust-yet-fragile)",
        robustness_score(&random),
        robustness_score(&attack)
    );

    // Full betweenness is O(n·m) — at 100k nodes that is the trunk's
    // job, not the access leaves'. Analyze the transit core: backbone,
    // metro, and peering links.
    let keep: Vec<bool> = g
        .edge_ids()
        .map(|e| {
            matches!(
                g.edge_weight(e).kind,
                LinkKind::Backbone | LinkKind::Metro | LinkKind::Peering
            )
        })
        .collect();
    let core = g.edge_subgraph(&keep);
    let core_mask = CsrGraph::from_graph(&core).largest_component_mask();
    let (core, _) = core.induced_subgraph(&core_mask);
    let core_csr = CsrGraph::from_graph(&core);
    let b = timed(
        &format!("trunk betweenness ({} nodes, par)", core.node_count()),
        || par_betweenness(&core_csr, threads),
    );
    let mut sorted = b.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = sorted.iter().sum();
    let top = sorted.iter().take(core.node_count() / 10).sum::<f64>();
    println!(
        "  top decile of trunk routers carries {:.0}% of trunk betweenness",
        100.0 * top / total.max(1e-12)
    );

    // Hop-count routing of a strided customer demand sample on the CSR
    // BFS kernel (one flat BFS per distinct source).
    let customers: Vec<NodeId> = g
        .node_ids()
        .filter(|&v| g.node_weight(v).role == RouterRole::Customer)
        .collect();
    let m = customers.len();
    let stride = ((m as f64 * 0.618_033_9) as usize).max(1);
    let demands: Vec<Demand> = (0..2000)
        .map(|i| {
            let a = i % m;
            let mut bi = (i * stride) % m;
            if bi == a {
                bi = (bi + 1) % m;
            }
            Demand {
                src: customers[a],
                dst: customers[bi],
                amount: 1.0,
            }
        })
        .collect();
    let outcome = timed("route 2000 customer demands (CSR BFS)", || {
        route(&g, &demands, IgpMetric::HopCount, |_, _| 1.0)
    });
    println!(
        "  mean {:.2} hops, max link load {:.0}, load gini {:.3}, unrouted {}",
        outcome.mean_hops(),
        outcome.max_load(),
        load_gini(&outcome),
        outcome.unrouted.len()
    );
}
