//! Large scale: generate, snapshot, and analyze a 1,000,000-router
//! Internet end to end.
//!
//! The seed experiments run at ~1k–3k nodes; this example is the
//! production-scale path the u32/SoA CSR kernels exist for. It runs the
//! paper's full pipeline — census, gravity traffic, an
//! economics-designed ISP population with Zipf footprints, peering — into one
//! combined router graph (1M routers by default), saves the topology as
//! a binary [`Snapshot`], and runs the whole-graph analytics on the
//! flat CSR view: component structure, sampled path metrics, the E10
//! robust-yet-fragile sweep, trunk betweenness, and a million-flow
//! batched link-load run. Each stage prints wall-clock; the topology
//! stage also prints routers/second.
//!
//! ```text
//! cargo run --release --example large_scale                 # 1M routers
//! cargo run --release --example large_scale 250000          # smaller
//! cargo run --release --example large_scale 1000000 net.snap
//! ```
//!
//! With a snapshot path, the first run writes `net.snap` after
//! generating and later runs reload it instead of regenerating — the
//! analytics consume identical bytes either way. Set `FULL_BETWEENNESS=1`
//! to also run whole-graph betweenness: above 100k nodes the
//! pivot-sampled estimator stands in for exact Brandes automatically.

use hotgen::graph::csr::CsrGraph;
use hotgen::graph::io::Snapshot;
use hotgen::graph::parallel::default_threads;
use hotgen::metrics::hierarchy::{betweenness_estimate, gini};
use hotgen::metrics::paths::path_metrics;
use hotgen::metrics::robustness::{degradation_curve, robustness_score, RemovalPolicy};
use hotgen::prelude::*;
use hotgen::sim::demand::DemandMatrix;
use hotgen::sim::traffic::{link_loads, RoutePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::time::Instant;

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    println!("{:<44} {:>9.2} s", label, t0.elapsed().as_secs_f64());
    out
}

/// Everything the analytics below consume, identical whether the
/// topology was generated cold or reloaded from a snapshot.
struct Topology {
    csr: CsrGraph,
    /// Per-node: is this a customer router?
    customer: Vec<bool>,
    /// Per-edge: is this a trunk (backbone/metro/peering) link?
    trunk: Vec<bool>,
    /// Edge endpoints by edge id.
    endpoints: Vec<(u32, u32)>,
}

/// Generates the full economy at roughly `target_nodes` routers and
/// packs the analytics inputs into a [`Snapshot`].
fn generate_snapshot(target_nodes: usize, seed: u64) -> Snapshot {
    let census = Census::synthesize(
        &CensusConfig {
            n_cities: 120,
            ..CensusConfig::default()
        },
        &mut StdRng::seed_from_u64(seed),
    );
    let traffic = TrafficMatrix::gravity(&census, &GravityConfig::default());
    // Scale by growing the ISP population (Zipf footprints, largest ISP
    // 24 POPs) at a fixed 490 customers per POP: per-POP access design
    // (Esau-Williams trees, facility location) is superlinear in
    // customers-per-POP, so adding POPs keeps generation linear in the
    // target. Each POP contributes ~500 routers all told — customers
    // that survive the profitability screen plus concentrator,
    // distribution, and backbone infrastructure — so size the ISP
    // population by POP count.
    const MAX_POPS: usize = 24;
    const SIZE_EXPONENT: f64 = 0.8;
    const ROUTERS_PER_POP: f64 = 490.0;
    let mut n_isps = 0usize;
    let mut pops = 0usize;
    while (pops as f64) * ROUTERS_PER_POP < target_nodes as f64 || n_isps < 4 {
        n_isps += 1;
        let s = MAX_POPS as f64 / (n_isps as f64).powf(SIZE_EXPONENT);
        pops += (s.round() as usize).clamp(1, MAX_POPS);
    }
    let config = InternetConfig {
        n_isps,
        max_pops: MAX_POPS,
        size_exponent: SIZE_EXPONENT,
        customers_per_pop: 490,
        ..InternetConfig::default()
    };
    let net = generate_internet(
        &census,
        &traffic,
        &config,
        &mut StdRng::seed_from_u64(seed + 1),
    );
    let g = net.combined_router_graph();
    let mut snap = Snapshot::new(CsrGraph::from_graph(&g));
    snap.node_u32.push((
        "customer".into(),
        g.node_ids()
            .map(|v| (g.node_weight(v).role == RouterRole::Customer) as u32)
            .collect(),
    ));
    snap.edge_u32.push((
        "trunk".into(),
        g.edge_ids()
            .map(|e| {
                matches!(
                    g.edge_weight(e).kind,
                    LinkKind::Backbone | LinkKind::Metro | LinkKind::Peering
                ) as u32
            })
            .collect(),
    ));
    let (mut ep_a, mut ep_b) = (Vec::new(), Vec::new());
    for (_, a, b, _) in g.edges() {
        ep_a.push(a.0);
        ep_b.push(b.0);
    }
    snap.edge_u32.push(("ep_a".into(), ep_a));
    snap.edge_u32.push(("ep_b".into(), ep_b));
    snap
}

fn unpack(snap: Snapshot) -> Topology {
    let col = |name: &str| -> Vec<u32> {
        snap.edge_u32
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("snapshot missing edge column {:?}", name))
            .1
            .clone()
    };
    let customer: Vec<bool> = snap
        .node_u32
        .iter()
        .find(|(n, _)| n == "customer")
        .expect("snapshot missing node column \"customer\"")
        .1
        .iter()
        .map(|&c| c != 0)
        .collect();
    let trunk: Vec<bool> = col("trunk").iter().map(|&t| t != 0).collect();
    let endpoints: Vec<(u32, u32)> = col("ep_a").into_iter().zip(col("ep_b")).collect();
    Topology {
        csr: snap.csr,
        customer,
        trunk,
        endpoints,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let target_nodes: usize = args
        .get(1)
        .map(|a| a.parse().expect("node count must be an integer"))
        .unwrap_or(1_000_000);
    let snap_path = args.get(2).map(Path::new);
    let threads = default_threads();
    println!(
        "worker threads: {}, target {} routers{}",
        threads,
        target_nodes,
        snap_path.map_or(String::new(), |p| format!(", snapshot {}", p.display()))
    );

    // Topology: reload the snapshot when it exists, generate (and
    // cache) otherwise. Analytics below never see the difference.
    let t0 = Instant::now();
    let (topo, how) = match snap_path {
        Some(path) if path.exists() => {
            let snap = timed("load binary snapshot", || {
                Snapshot::load(path).expect("snapshot loads")
            });
            (unpack(snap), "loaded")
        }
        _ => {
            let snap = timed("generate internet (Zipf ISP economy + peering)", || {
                generate_snapshot(target_nodes, 42)
            });
            if let Some(path) = snap_path {
                timed("write binary snapshot", || {
                    snap.save(path).expect("snapshot saves")
                });
            }
            (unpack(snap), "generated")
        }
    };
    let n = topo.csr.node_count();
    let m = topo.endpoints.len();
    println!(
        "topology ({}): {} routers, {} links, max degree {} — {:.0} routers/s",
        how,
        n,
        m,
        topo.csr.degree_sequence().into_iter().max().unwrap_or(0),
        n as f64 / t0.elapsed().as_secs_f64()
    );
    println!(
        "  giant component: {:.1}% of routers",
        100.0 * topo.csr.largest_component_size() as f64 / n.max(1) as f64
    );

    // The adjacency-list view, rebuilt from the endpoint columns — edge
    // ids and adjacency order match the generated graph exactly.
    let g: hotgen::graph::Graph<(), ()> = hotgen::graph::Graph::from_edges(
        n,
        topo.endpoints
            .iter()
            .map(|&(a, b)| (a as usize, b as usize, ())),
    );

    let paths = timed("path metrics (sampled BFS sweep)", || path_metrics(&g));
    println!(
        "  mean distance {:.2} hops, diameter >= {}, exact={}",
        paths.mean_distance, paths.diameter, paths.exact
    );

    // E10 at scale: the masked-BFS sweep never copies the graph.
    let fractions = [0.01, 0.02, 0.05, 0.1];
    let random = timed("degradation curve (random failure)", || {
        degradation_curve(
            &g,
            RemovalPolicy::RandomFailure,
            &fractions,
            &mut StdRng::seed_from_u64(44),
            threads,
        )
    });
    let attack = timed("degradation curve (degree attack)", || {
        degradation_curve(
            &g,
            RemovalPolicy::DegreeAttack,
            &fractions,
            &mut StdRng::seed_from_u64(44),
            threads,
        )
    });
    println!(
        "  robustness score: random {:.3} vs attack {:.3} (robust-yet-fragile)",
        robustness_score(&random),
        robustness_score(&attack)
    );

    // Trunk betweenness: backbone + metro + peering, the transit core.
    let core = g.edge_subgraph(&topo.trunk);
    let core_mask = CsrGraph::from_graph(&core).largest_component_mask();
    let (core, _) = core.induced_subgraph(&core_mask);
    let core_csr = CsrGraph::from_graph(&core);
    let (b, sampled) = timed(
        &format!("trunk betweenness ({} nodes)", core.node_count()),
        || betweenness_estimate(&core_csr, threads),
    );
    let mut sorted = b.clone();
    sorted.sort_by(|x, y| y.partial_cmp(x).unwrap());
    let total: f64 = sorted.iter().sum();
    let top = sorted.iter().take(core.node_count() / 10).sum::<f64>();
    println!(
        "  top decile of trunk routers carries {:.0}% of trunk betweenness (sampled={})",
        100.0 * top / total.max(1e-12),
        sampled
    );

    // Whole-graph betweenness on request: above 100k nodes the seeded
    // pivot estimator kicks in automatically.
    if std::env::var("FULL_BETWEENNESS").as_deref() == Ok("1") {
        let (b, sampled) = timed("whole-graph betweenness", || {
            betweenness_estimate(&topo.csr, threads)
        });
        println!(
            "  whole-graph betweenness gini {:.3} (sampled={})",
            gini(&b),
            sampled
        );
    }

    // Million-flow link loads on the batched tree-reuse engine: uniform
    // demand among ~1024 strided customers is > 1M ordered OD flows,
    // routed from one BFS tree per distinct source.
    let customers: Vec<u32> = (0..n as u32)
        .filter(|&v| topo.customer[v as usize])
        .collect();
    let n_sources = customers.len().min(1_024);
    let stride = (customers.len() / n_sources.max(1)).max(1);
    let mut mass = vec![0.0; n];
    for &v in customers.iter().step_by(stride).take(n_sources) {
        mass[v as usize] = 1.0;
    }
    // Explicit unit scale: the normalizing constructor sums demand over
    // all node pairs (O(n²)) and the load statistics below are
    // scale-invariant, so every routed flow just carries amount 1.
    let demand = DemandMatrix::from_masses_scaled(mass, None, 0.0, 1.0, 1.0);
    let out = timed(
        &format!("batched link loads ({} sources)", n_sources),
        || link_loads(&topo.csr, &demand, RoutePolicy::TreePath, threads),
    );
    println!(
        "  {} flows routed ({} unrouted), mean {:.2} hops, load gini {:.3}",
        out.routed_flows,
        out.unrouted_flows,
        out.mean_hops(),
        gini(&out.link_load)
    );
}
