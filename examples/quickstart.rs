//! Quickstart: design a metro access network the way the paper's §4
//! proposes, and look at what got built.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hotgen::core::buyatbulk::{greedy, routing::build_report};
use hotgen::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    // 1. An economy: the paper's buy-at-bulk cable catalog — bigger pipes
    //    cost more to install but much less per megabit.
    let catalog = CableCatalog::realistic_2003();
    println!("cable catalog (per unit length):");
    for t in catalog.types() {
        println!(
            "  {:<8} capacity {:>7.0}  fixed {:>6.1}  marginal {:>6.3}",
            t.name, t.capacity, t.fixed_cost, t.marginal_cost
        );
    }
    // 2. A metro: 120 customers scattered around a central office.
    let cost = LinkCost::cables_only(catalog);
    let instance = Instance::random_uniform(120, 20.0, cost, &mut rng);
    println!(
        "\ninstance: {} customers, {:.0} total demand",
        instance.n_customers(),
        instance.total_demand()
    );
    // 3. Solve: the randomized incremental approximation, then local search.
    let outcome = greedy::mmp_plus_improve(&instance, &mut rng, 2000);
    println!(
        "\nMMP cost {:.1} -> after local search {:.1} ({} moves)",
        outcome.initial_cost, outcome.final_cost, outcome.moves
    );
    // Compare against the no-aggregation star design.
    let star_cost = greedy::star(&instance).total_cost(&instance);
    println!(
        "direct-star design would cost {:.1} ({:.2}x)",
        star_cost,
        star_cost / outcome.final_cost
    );
    // 4. Inspect the build.
    let report = build_report(&instance, &outcome.solution);
    println!(
        "\nbuild: {:.2} fiber-km, mean {:.1} hops to the core",
        report.total_length, report.mean_hops
    );
    println!("cable-km by type:");
    for (i, km) in report.cable_km.iter().enumerate() {
        if *km > 0.0 {
            println!("  {:<8} {:.2}", instance.cost.catalog.types()[i].name, km);
        }
    }
    // 5. The paper's punchline: the tree's degrees are exponentially
    //    distributed — a by-product of cost optimization, not a target.
    let degrees = outcome.solution.degree_sequence();
    let verdict = hotgen::metrics::expfit::classify(&degrees);
    println!(
        "\ndegree tail: {} (max degree {})",
        verdict.class,
        degrees.iter().max().unwrap()
    );
}
