//! Internet assembly: generate a population of ISPs over one shared
//! geography, interconnect them, and compare the AS-level and
//! router-level views (paper §2.3 + §3.2).
//!
//! ```text
//! cargo run --release --example internet_assembly
//! ```

use hotgen::core::isp::generator::IspConfig;
use hotgen::metrics::degree_dist::ascii_ccdf;
use hotgen::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let census = Census::synthesize(
        &CensusConfig {
            n_cities: 25,
            ..CensusConfig::default()
        },
        &mut StdRng::seed_from_u64(11),
    );
    let traffic = TrafficMatrix::gravity(&census, &GravityConfig::default());
    let config = InternetConfig {
        n_isps: 30,
        max_pops: 10,
        tier1_count: 3,
        transit_per_isp: 2,
        customers_per_pop: 10,
        isp_template: IspConfig {
            max_router_degree: 12,
            ..IspConfig::default()
        },
        ..InternetConfig::default()
    };
    let net = generate_internet(&census, &traffic, &config, &mut StdRng::seed_from_u64(12));
    println!(
        "{} ISPs (largest: {} POPs; smallest: {} POP), {} peering links",
        net.isps.len(),
        net.isps[0].pop_cities.len(),
        net.isps.last().unwrap().pop_cities.len(),
        net.peering.len()
    );
    let as_degrees = net.as_degrees();
    println!("\nAS-level degree CCDF (business relationships, unbounded):");
    println!("{}", ascii_ccdf(&as_degrees, 48, 10));
    let router = net.combined_router_graph();
    let router_degrees = router.degree_sequence();
    println!(
        "router-level: {} routers, max degree {} (line-card cap {})",
        router.node_count(),
        router_degrees.iter().max().unwrap(),
        net.router_degree_cap
    );
    println!("router-level degree CCDF (technology-bounded):");
    println!("{}", ascii_ccdf(&router_degrees, 48, 10));
    println!(
        "same economy, two graphs, two laws — the paper's argument that \
         AS-level and router-level topologies have different generative \
         mechanisms."
    );
}
