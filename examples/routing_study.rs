//! Routing study: run an IGP over a generated ISP, inspect where the
//! load lands, and stress it with single-link failures — the "dynamics
//! of routing protocols" application the paper's abstract promises.
//!
//! ```text
//! cargo run --release --example routing_study
//! ```

use hotgen::prelude::*;
use hotgen::sim::failure::single_link_failures;
use hotgen::sim::routing::{load_gini, route, Demand, IgpMetric};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let census = Census::synthesize(
        &CensusConfig {
            n_cities: 30,
            ..CensusConfig::default()
        },
        &mut StdRng::seed_from_u64(21),
    );
    let traffic = TrafficMatrix::gravity(&census, &GravityConfig::default());
    let config = IspConfig {
        n_pops: 8,
        total_customers: 300,
        ..IspConfig::default()
    };
    let isp = generate_isp(&census, &traffic, &config, &mut StdRng::seed_from_u64(22));
    println!(
        "ISP: {} routers, {} links",
        isp.graph.node_count(),
        isp.graph.edge_count()
    );
    // Customer-pair demands (deterministic golden-stride sample).
    let customers: Vec<NodeId> = isp
        .graph
        .node_ids()
        .filter(|&v| isp.graph.node_weight(v).role == RouterRole::Customer)
        .collect();
    let m = customers.len();
    let stride = ((m as f64 * 0.618) as usize).max(1);
    let demands: Vec<Demand> = (0..800)
        .map(|i| Demand {
            src: customers[i % m],
            dst: customers[(i * stride + 1) % m],
            amount: 1.0,
        })
        .filter(|d| d.src != d.dst)
        .collect();
    let outcome = route(&isp.graph, &demands, IgpMetric::HopCount, |_, _| 1.0);
    println!(
        "routed {} demands at mean {:.1} hops; load gini {:.2}; max link load {:.0}",
        demands.len() - outcome.unrouted.len(),
        outcome.mean_hops(),
        load_gini(&outcome),
        outcome.max_load()
    );
    // Which links carry the most? (Spoiler: the trunks the design sized.)
    let mut loaded: Vec<(usize, f64)> = outcome
        .link_load
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 0.0)
        .map(|(e, &l)| (e, l))
        .collect();
    loaded.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 loaded links:");
    for (e, load) in loaded.iter().take(5) {
        let link = isp.graph.edge_weight(hotgen::graph::EdgeId(*e as u32));
        println!(
            "  {:?} link, {:.1} km, cable {:<7} load {:.0} (designed flow {:.0})",
            link.kind, link.length, link.cable, load, link.flow
        );
    }
    // Failure stress on the loaded links.
    let summary = single_link_failures(&isp.graph, &demands, IgpMetric::HopCount, |_, _| 1.0);
    println!(
        "\nsingle-link failures over {} loaded links: {:.0}% strand traffic \
         (worst case {:.1}% of all traffic), survivors re-route at {:.3}x hops",
        summary.impacts.len(),
        summary.stranding_fraction * 100.0,
        summary.worst_stranded_fraction * 100.0,
        summary.mean_stretch
    );
    println!(
        "\naccess trees make most failures stranding events — exactly the \
         cost/survivability trade-off the backbone's redundancy requirement \
         (and E9b/E12) prices out."
    );
}
