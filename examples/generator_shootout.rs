//! Generator shootout: the paper's §1 critique in one table — generators
//! that agree on the degree distribution disagree on everything else.
//!
//! ```text
//! cargo run --release --example generator_shootout
//! ```

use hotgen::baselines::{ba, plrg, waxman};
use hotgen::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 800;
    let mut reports = Vec::new();
    // HOT-style: FKP in the trade-off window (heavy-tailed by optimization).
    let topo = fkp::grow(
        &FkpConfig {
            n,
            alpha: 10.0,
            ..FkpConfig::default()
        },
        &mut StdRng::seed_from_u64(1),
    );
    reports.push(MetricReport::compute("fkp(hot)", &topo.to_graph()));
    // Degree-based: BA and PLRG (heavy-tailed by construction).
    reports.push(MetricReport::compute(
        "ba(m=1)",
        &ba::generate(n, 1, &mut StdRng::seed_from_u64(2)),
    ));
    reports.push(MetricReport::compute(
        "plrg(2.2)",
        &plrg::generate(n, 2.2, 1, &mut StdRng::seed_from_u64(3)),
    ));
    // Structural: Waxman (geography, no heavy tail).
    reports.push(MetricReport::compute(
        "waxman",
        &waxman::generate(
            &waxman::WaxmanConfig {
                n,
                ..waxman::WaxmanConfig::default()
            },
            &mut StdRng::seed_from_u64(4),
        ),
    ));
    println!("{}", MetricReport::table(&reports));
    println!(
        "fkp(hot) and ba(m=1) are both trees with heavy-tailed degrees — \
         matched on the headline metric — yet differ in expansion, \
         hierarchy (gini), and diameter; that is the paper's point about \
         descriptive generation."
    );
}
