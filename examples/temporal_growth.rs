//! Temporal growth walkthrough: evolve a HOT internet and a BA control
//! through 20 epochs of the dot-com trend and watch the signatures
//! diverge — the HOT maximum degree stays pinned near the line-card
//! cap while the preferential hub compounds, and the load Gini
//! trajectories separate the mechanisms.
//!
//! ```text
//! cargo run --release --example temporal_growth
//! ```

use hotgen::econ::trend::TechTrend;
use hotgen::graph::graph::EdgeId;
use hotgen::metrics::rolling::{DeltaBetweenness, RollingDegrees};
use hotgen::sim::evolve::{
    DegreeGrowth, Evolution, EvolveConfig, GrowthModel, HotGrowth, HotGrowthConfig,
};

const EPOCHS: u64 = 20;
const ARRIVALS: usize = 60;

fn evolve_and_report<M: GrowthModel>(model: M) {
    let mut evo = Evolution::new(
        model,
        EvolveConfig {
            epochs: EPOCHS,
            arrivals_per_epoch: ARRIVALS,
            trend: TechTrend::dotcom(),
            reopt_interval: 4,
            seed: 20030617,
        },
    );
    println!(
        "--- {} ({} epochs x {} arrivals, dot-com trend) ---",
        evo.model_name(),
        EPOCHS,
        ARRIVALS
    );
    println!(
        "{:>5} {:>7} {:>7} {:>8} {:>8} {:>9} {:>8}",
        "epoch", "nodes", "links", "mean-deg", "max-deg", "bw-gini", "new-bb"
    );
    // Rolling analytics ride the epoch deltas; nothing is recomputed
    // from scratch (the differential test suite proves the bit-exact
    // equivalence separately).
    let mut degs = RollingDegrees::from_degrees(&evo.graph().csr().degree_sequence());
    let mut bw = DeltaBetweenness::new(0xE20, 8);
    bw.update(evo.graph().csr(), 0);
    for _ in 0..EPOCHS {
        let delta = evo.step();
        degs.grow_to(evo.graph().node_count());
        for e in delta.new_edges.clone() {
            let (a, b) = evo.graph().graph().edge_endpoints(EdgeId(e as u32));
            degs.add_edge(a.index(), b.index());
        }
        bw.update(evo.graph().csr(), 0);
        println!(
            "{:>5} {:>7} {:>7} {:>8.3} {:>8} {:>9.4} {:>8}",
            delta.epoch,
            degs.node_count(),
            degs.edge_count(),
            degs.mean_degree(),
            degs.max_degree(),
            bw.load().gini,
            delta.reopt_links,
        );
    }
    println!();
}

fn main() {
    evolve_and_report(HotGrowth::new(HotGrowthConfig {
        cities: 10,
        ..HotGrowthConfig::default()
    }));
    evolve_and_report(DegreeGrowth::ba(2));
    println!(
        "note: the HOT column pins its max degree near the access cap while\n\
         the BA hub compounds; run `expctl --run e20` for the full study."
    );
}
