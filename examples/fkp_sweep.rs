//! FKP sweep: watch the topology change phase as the trade-off weight α
//! moves, with ASCII CCDF plots (paper §3.1).
//!
//! ```text
//! cargo run --release --example fkp_sweep
//! ```

use hotgen::metrics::degree_dist::ascii_ccdf;
use hotgen::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 4000;
    for (alpha, expectation) in [
        (
            0.5,
            "below 1/sqrt(2): every arrival attaches to the root -> star",
        ),
        (
            8.0,
            "trade-off window: hubs at many scales -> power-law-ish tail",
        ),
        (
            4000.0,
            "distance dominates: nearest-neighbor tree -> exponential tail",
        ),
    ] {
        let config = FkpConfig {
            n,
            alpha,
            ..FkpConfig::default()
        };
        let topo = fkp::grow(&config, &mut StdRng::seed_from_u64(7));
        let degrees = topo.degree_sequence();
        let class = fkp::classify(&topo);
        println!("==================================================================");
        println!("alpha = {}  ({})", alpha, expectation);
        println!(
            "class {:?}; max degree {}; height {}; total fiber {:.1}",
            class,
            degrees.iter().max().unwrap(),
            topo.tree.height(),
            topo.total_length()
        );
        println!("{}", ascii_ccdf(&degrees, 56, 12));
    }
}
