//! Vendored, dependency-free stand-in for the `criterion` bench harness.
//!
//! The build environment has no access to crates.io, so this crate
//! implements just enough of criterion's surface for the workspace's
//! four bench harnesses: [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed in
//! batches until a small wall-clock budget (default ~200 ms, shrunk by
//! `sample_size`) is exhausted; the mean per-iteration time is printed.
//! No statistics, plots, or baselines — swap in real criterion when the
//! registry is reachable.
//!
//! When the `CRITERION_JSON` environment variable names a file, the
//! accumulated results are additionally written to it as a JSON array
//! of `{"bench", "mean_ns", "iters"}` records when the harness exits —
//! that is what CI's bench smoke job uploads so the perf trajectory of
//! the kernels is recorded per commit.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results accumulated for the optional `CRITERION_JSON` report.
static RESULTS: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

/// Writes the accumulated results as JSON to `$CRITERION_JSON`, if set.
/// Called by the `criterion_main!`-generated `main` after all groups ran.
pub fn write_json_report() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    write_json_report_to(&path);
}

/// Writes the accumulated results as JSON to `path` (overwriting).
pub fn write_json_report_to(path: &str) {
    let results = RESULTS.lock().expect("results poisoned");
    let mut out = String::from("[\n");
    for (i, (bench, mean_ns, iters)) in results.iter().enumerate() {
        // Labels are workspace-controlled identifiers; escape the JSON
        // specials anyway so the file always parses.
        let escaped: String = bench
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "  {{\"bench\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{}\n",
            escaped,
            mean_ns,
            iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("criterion stub: could not write {}: {}", path, e);
    } else {
        println!(
            "criterion stub: wrote {} results to {}",
            results.len(),
            path
        );
    }
}

/// Timing loop driver handed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Call `routine` repeatedly and record the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and a first timing probe in one.
        let probe_start = Instant::now();
        std::hint::black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        // Size batches so each is ~1/8 of the budget, at least 1 iter.
        let per_batch = (self.budget.as_nanos() / 8 / probe.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.budget {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += per_batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Identifier for a parameterised benchmark, e.g. `fkp_grow/2000`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 100;
const BUDGET_PER_BENCH: Duration = Duration::from_millis(200);

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's knob for expensive benchmarks; here it scales the
    /// wall-clock budget down proportionally.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    fn budget(&self) -> Duration {
        BUDGET_PER_BENCH.mul_f64(self.sample_size as f64 / DEFAULT_SAMPLE_SIZE as f64)
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.budget(), |b| f(b));
        self
    }

    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.budget(), |b| f(b, input));
        self
    }

    /// Criterion generates reports here; the stub has nothing to flush.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, BUDGET_PER_BENCH, |b| f(b));
        self
    }

    /// Upstream parses CLI flags here; the stub accepts and ignores
    /// whatever `cargo bench` passes (e.g. `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, budget: Duration, mut f: F) {
    let mut bencher = Bencher {
        budget,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    println!(
        "{:<50} {:>14} {:>10} iters",
        label,
        format_ns(bencher.mean_ns),
        bencher.iters
    );
    RESULTS.lock().expect("results poisoned").push((
        label.to_owned(),
        bencher.mean_ns,
        bencher.iters,
    ));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{:.0} ns", ns)
    }
}

/// Bundle benchmark functions into a group runner, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running every group (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = 0u32;
        group.bench_function("trivial", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 2);
    }

    // Exercises the path-taking writer directly: mutating the process
    // environment from a test would race the other tests on the
    // harness's worker threads.
    #[test]
    fn json_report_written() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("json");
        group.sample_size(10);
        group.bench_function("probe", |b| b.iter(|| std::hint::black_box(2 + 2)));
        group.finish();
        let path = std::env::temp_dir().join("criterion_stub_report.json");
        write_json_report_to(path.to_str().expect("utf-8 temp path"));
        let body = std::fs::read_to_string(&path).expect("report written");
        assert!(body.trim_start().starts_with('['));
        assert!(body.contains("\"bench\": \"json/probe\""));
        assert!(body.contains("\"mean_ns\""));
        let _ = std::fs::remove_file(&path);
    }
}
