//! Vendored, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`],
//! `ProptestConfig::with_cases`, range and tuple strategies, and
//! [`collection::vec`].
//!
//! Unlike upstream proptest there is no shrinking and no persisted
//! failure seeds: every test function draws its cases from a fixed-seed
//! [`rand::rngs::StdRng`], so failures reproduce exactly on every run.

use rand::rngs::StdRng;

/// Strategy trait: something that can produce a random value.
pub mod strategy {
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            assert!(
                self.size.start < self.size.end,
                "vec strategy requires a non-empty size range, got {:?}",
                self.size
            );
            let len = if self.size.start + 1 == self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration (`ProptestConfig` upstream).
pub mod test_runner {
    use super::StdRng;
    use rand::SeedableRng;

    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The fixed-seed generator every `proptest!` body draws from.
    pub fn deterministic_rng() -> StdRng {
        StdRng::seed_from_u64(0x70726F70_74657374) // "prop" "test"
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declare deterministic property tests.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by one or more
/// `#[test] fn name(arg in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::deterministic_rng();
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("property failed on case {case}: {msg}");
                    }
                }
            }
        )+
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            n in 2usize..10,
            x in 0.5f64..4.0,
            pairs in crate::collection::vec((0usize..10, 0usize..10), 0..16),
        ) {
            prop_assert!((2..10).contains(&n));
            prop_assert!((0.5..4.0).contains(&x), "x = {}", x);
            prop_assert!(pairs.len() < 16);
            for (a, b) in pairs {
                prop_assert!(a < 10 && b < 10);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..100) {
            prop_assert_eq!(seed, seed);
        }
    }
}
