//! Vendored, dependency-free stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses:
//!
//! - [`RngCore`] / [`Rng`] with [`Rng::random_range`] over integer and
//!   float ranges (half-open and inclusive);
//! - [`SeedableRng`] with `seed_from_u64` / `from_seed`;
//! - [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64) and
//!   [`rngs::ThreadRng`];
//! - [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! Everything is deterministic given a seed, which is exactly what the
//! reproduction's seeded experiments need. The generator is *not*
//! cryptographically secure and the integer range sampling uses a plain
//! widening-multiply reduction — fine for simulation, not for security.

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniform sample in `[0, 1)` mapped through the type's
    /// `Standard`-like distribution (floats only in this stub).
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from a "standard" distribution (`[0,1)` for floats).
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the same
    /// recommendation the xoshiro authors give).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, high-quality, and deterministic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is the one fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    /// Stand-in for `rand::rngs::ThreadRng`. Not actually thread-local:
    /// each call to [`super::rng`] returns a freshly seeded generator,
    /// which keeps the workspace deterministic.
    #[derive(Clone, Debug)]
    pub struct ThreadRng(StdRng);

    impl Default for ThreadRng {
        fn default() -> Self {
            ThreadRng(StdRng::seed_from_u64(0x5EED))
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

/// A deterministic "thread" RNG (see [`rngs::ThreadRng`]).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng::default()
}

/// Uniform-range plumbing, mirroring `rand::distr::uniform`.
pub mod distr {
    pub mod uniform {
        use crate::{RngCore, SampleStandard};
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Unbiased integer reduction via 128-bit widening multiply
        /// (Lemire's method without the rejection step; the bias is
        /// < 2^-64, irrelevant for simulation workloads).
        #[inline]
        fn reduce(word: u64, span: u64) -> u64 {
            ((word as u128 * span as u128) >> 64) as u64
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        if span > u64::MAX as u128 {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(reduce(rng.next_u64(), span as u64) as $t)
                    }
                }
            )*};
        }

        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let u = <$t as SampleStandard>::sample_standard(rng);
                        let v = self.start + (self.end - self.start) * u;
                        // Guard the half-open upper bound against
                        // floating-point round-up.
                        if v >= self.end { self.start } else { v }
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let u = <$t as SampleStandard>::sample_standard(rng);
                        let v = lo + (hi - lo) * u;
                        // `hi - lo` can round up, pushing `v` past `hi`.
                        if v > hi {
                            hi
                        } else {
                            v
                        }
                    }
                }
            )*};
        }

        float_range!(f32, f64);
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle, identical element-visit order to
        /// upstream `rand` (high-to-low swap indices).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let w: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(w >= f64::MIN_POSITIVE && w < 1.0);
        }
    }

    #[test]
    fn inclusive_float_range_never_exceeds_hi() {
        // hi - lo rounds up here (0.7000000000000001), which used to
        // push samples past hi.
        let (lo, hi) = (-0.3f64, 0.4f64);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let v = rng.random_range(lo..=hi);
            assert!(v >= lo && v <= hi, "v = {v}");
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_half = 0;
        for _ in 0..1000 {
            if rng.random_range(0.0..10.0) < 5.0 {
                lo_half += 1;
            }
        }
        // Roughly uniform: both halves hit.
        assert!(lo_half > 300 && lo_half < 700, "lo_half = {lo_half}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn dyn_rngcore_supports_random_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynref: &mut dyn RngCore = &mut rng;
        let v = dynref.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}
