//! Differential suite for the capacitated subsystem: the batched
//! cascade must agree with the per-flow, per-round naive reference
//! **exactly** (integer demands make every load sum exact in f64, and
//! failure decisions depend only on those loads), and the full E18
//! report must be byte-identical at 1 vs 8 worker threads — the same
//! contract `traffic_equivalence.rs` pins for the flat engine.

use hotgen::baselines::glp;
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::parallel::default_threads;
use hotgen::sim::cascade::{cascade, cascade_naive, CascadeConfig};
use hotgen::sim::demand::OdDemand;
use hotgen::sim::traffic::{link_loads, RoutePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

mod common;
use common::Banded;

/// Integer-valued OD demand: small integers varying per pair, so f64
/// sums are exact regardless of association order.
struct IntegerDemand {
    n: usize,
}

impl OdDemand for IntegerDemand {
    fn node_count(&self) -> usize {
        self.n
    }
    fn demand(&self, src: usize, dst: usize) -> f64 {
        if src == dst {
            0.0
        } else {
            ((src * 7 + dst * 13) % 5) as f64 // 0..=4, zeros included
        }
    }
}

/// Deterministic capacities that force a multi-round cascade: most
/// links get comfortable headroom over their intact-graph load, but
/// every 7th link is provisioned *below* it, so the first round fails
/// a spread-out batch and the re-routes keep tripping more.
fn stressed_capacities(csr: &CsrGraph, dem: &dyn OdDemand, threads: usize, slack: f64) -> Vec<f64> {
    let loads = link_loads(csr, dem, RoutePolicy::TreePath, threads);
    loads
        .link_load
        .iter()
        .enumerate()
        .map(|(e, &l)| (l + 1.0) * if e % 7 == 0 { 0.8 } else { slack })
        .collect()
}

fn assert_cascades_equal(
    csr: &CsrGraph,
    dem: &dyn OdDemand,
    caps: &[f64],
    cfg: &CascadeConfig,
    min_rounds: usize,
    label: &str,
) {
    let slow = cascade_naive(csr, dem, caps, cfg);
    for threads in [1, 4, 8] {
        let fast = cascade(csr, dem, caps, cfg, threads);
        // Structural equality covers every per-round float (max_util,
        // routed/stranded traffic, surviving capacity) bit for bit:
        // f64 PartialEq is == on the values the engine produced.
        assert_eq!(
            fast, slow,
            "{}: batched vs naive at {} threads",
            label, threads
        );
        assert!(fast.converged, "{}: must reach the fixed point", label);
        assert!(
            fast.rounds.len() <= csr.edge_count() + 1,
            "{}: termination bound",
            label
        );
        assert!(
            fast.rounds.len() >= min_rounds && fast.failed_links() > 0,
            "{}: the stressed capacities must actually fail links, got {} rounds / {} failed",
            label,
            fast.rounds.len(),
            fast.failed_links()
        );
    }
}

/// The differential heart on a degree-based topology: a 5k-node GLP
/// graph under a band of integer demands, under-provisioned on a
/// deterministic subset of links. Batched == naive, round by round,
/// at every thread count.
#[test]
fn cascade_matches_naive_on_glp5k() {
    let g = glp::generate(
        &glp::GlpConfig {
            n: 5000,
            ..glp::GlpConfig::default()
        },
        &mut StdRng::seed_from_u64(20030617),
    );
    let csr = CsrGraph::from_graph(&g);
    let dem = Banded {
        inner: IntegerDemand { n: 5000 },
        max_src: 120,
    };
    let caps = stressed_capacities(&csr, &dem, 4, 1.5);
    assert_cascades_equal(&csr, &dem, &caps, &CascadeConfig::default(), 3, "glp5k");
}

/// Same contract on the designed HOT topology: the golden-scale ISP
/// (hierarchical, capped degrees) with dense integer demands.
#[test]
fn cascade_matches_naive_on_designed_isp() {
    use hot_exp::fixtures::standard_geography;
    use hotgen::core::isp::generator::{generate, IspConfig};
    let (census, traffic) = standard_geography(15, 20030617);
    let config = IspConfig {
        n_pops: 4,
        total_customers: 300,
        ..IspConfig::default()
    };
    let isp = generate(
        &census,
        &traffic,
        &config,
        &mut StdRng::seed_from_u64(20030617),
    );
    let csr = CsrGraph::from_graph(&isp.graph);
    let n = csr.node_count();
    let dem = IntegerDemand { n };
    let caps = stressed_capacities(&csr, &dem, 4, 1.1);
    assert_cascades_equal(&csr, &dem, &caps, &CascadeConfig::default(), 2, "isp");
}

/// The full E18 report — provisioning, TE trajectories, cascade
/// trajectories, every table cell — serialized to JSON must be
/// byte-identical at 1 vs 8 worker threads.
#[test]
fn e18_report_byte_identical_across_thread_counts() {
    use hot_exp::scenarios::e18;
    let ctx = |threads: usize| hot_exp::RunCtx {
        scale: hot_exp::Scale::Golden,
        seed: hot_exp::SEED,
        threads,
        snapshot_dir: None,
    };
    let p = e18::Params::golden();
    let one = e18::run(&p, ctx(1)).to_json().compact();
    let eight = e18::run(&p, ctx(8)).to_json().compact();
    assert_eq!(one, eight, "E18 report must not depend on thread count");
    // And the default-thread run (what CI machines actually use).
    let auto = e18::run(&p, ctx(default_threads())).to_json().compact();
    assert_eq!(one, auto);
}
