//! Equivalence suite for the CSR analytics kernels: the parallel
//! implementations must match the serial ones **bit-for-bit** at every
//! thread count from 1 to 8, on structured graphs (path, star, grid),
//! seeded generated topologies (FKP, Waxman, GLP), and the degenerate
//! empty / single-node graphs.
//!
//! The kernels guarantee this by construction — sources are split into
//! chunks whose boundaries ignore the thread count, and partials are
//! reduced in chunk order — so a failure here means that invariant
//! broke, not that floating point drifted.

use hotgen::baselines::{glp, waxman};
use hotgen::graph::betweenness::betweenness;
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::parallel::{
    par_avg_path_length, par_betweenness, par_path_summary, path_summary,
};
use hotgen::graph::{Graph, NodeId};
use hotgen::metrics::robustness::{degradation, degradation_curve, RemovalPolicy};
use hotgen::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixture set: name plus an unannotated copy of each topology.
fn fixtures() -> Vec<(&'static str, Graph<(), ()>)> {
    let path: Graph<(), ()> =
        Graph::from_edges(64, (0..63).map(|i| (i, i + 1, ())).collect::<Vec<_>>());
    let star: Graph<(), ()> =
        Graph::from_edges(64, (1..64).map(|i| (0, i, ())).collect::<Vec<_>>());
    let mut grid: Graph<(), ()> = Graph::new();
    let (w, h) = (12, 12);
    for _ in 0..w * h {
        grid.add_node(());
    }
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                grid.add_edge(
                    NodeId((y * w + x) as u32),
                    NodeId((y * w + x + 1) as u32),
                    (),
                );
            }
            if y + 1 < h {
                grid.add_edge(
                    NodeId((y * w + x) as u32),
                    NodeId(((y + 1) * w + x) as u32),
                    (),
                );
            }
        }
    }
    let fkp = fkp::grow(
        &FkpConfig {
            n: 400,
            alpha: 10.0,
            ..FkpConfig::default()
        },
        &mut StdRng::seed_from_u64(1),
    )
    .to_graph()
    .map(|_, _| (), |_, _| ());
    let wax = waxman::generate(
        &waxman::WaxmanConfig {
            n: 300,
            ..waxman::WaxmanConfig::default()
        },
        &mut StdRng::seed_from_u64(2),
    )
    .map(|_, _| (), |_, _| ());
    let glp_graph = glp::generate(
        &glp::GlpConfig {
            n: 400,
            ..glp::GlpConfig::default()
        },
        &mut StdRng::seed_from_u64(3),
    );
    let empty: Graph<(), ()> = Graph::new();
    let mut single: Graph<(), ()> = Graph::new();
    single.add_node(());
    vec![
        ("path64", path),
        ("star64", star),
        ("grid12x12", grid),
        ("fkp400", fkp),
        ("waxman300", wax),
        ("glp400", glp_graph),
        ("empty", empty),
        ("single", single),
    ]
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn par_betweenness_matches_serial_bit_for_bit() {
    for (name, g) in fixtures() {
        let serial = betweenness(&g);
        let csr = CsrGraph::from_graph(&g);
        for threads in 1..=8 {
            let par = par_betweenness(&csr, threads);
            assert_eq!(
                bits(&serial),
                bits(&par),
                "betweenness diverged on {} at {} threads",
                name,
                threads
            );
        }
    }
}

#[test]
fn par_path_summary_matches_serial_at_all_thread_counts() {
    for (name, g) in fixtures() {
        let csr = CsrGraph::from_graph(&g);
        let sources: Vec<NodeId> = g.node_ids().collect();
        let serial = path_summary(&csr, &sources);
        for threads in 1..=8 {
            let par = par_path_summary(&csr, &sources, threads);
            assert_eq!(
                serial, par,
                "path summary diverged on {} at {} threads",
                name, threads
            );
            let mean = par_avg_path_length(&csr, threads);
            assert_eq!(
                serial.mean_distance().to_bits(),
                mean.to_bits(),
                "avg path length diverged on {} at {} threads",
                name,
                threads
            );
        }
    }
}

#[test]
fn parallel_degradation_curve_matches_serial() {
    let fractions = [0.0, 0.02, 0.05, 0.1, 0.25, 0.5];
    for (name, g) in fixtures() {
        for policy in [RemovalPolicy::RandomFailure, RemovalPolicy::DegreeAttack] {
            let serial = degradation(&g, policy, &fractions, &mut StdRng::seed_from_u64(9));
            for threads in 1..=8 {
                let par = degradation_curve(
                    &g,
                    policy,
                    &fractions,
                    &mut StdRng::seed_from_u64(9),
                    threads,
                );
                assert_eq!(serial.len(), par.len());
                for (a, b) in serial.iter().zip(&par) {
                    assert_eq!(
                        (a.removed_fraction.to_bits(), a.giant_fraction.to_bits()),
                        (b.removed_fraction.to_bits(), b.giant_fraction.to_bits()),
                        "degradation diverged on {} ({:?}) at {} threads",
                        name,
                        policy,
                        threads
                    );
                }
            }
        }
    }
}
