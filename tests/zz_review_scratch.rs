use hotgen::graph::Graph;
use hotgen::graph::graph::NodeId;
use hotgen::sim::probe::infer_map_batched;
use hotgen::sim::traceroute::{infer_map, strided_vantages};

fn weighted_fixture(n: usize, pairs: &[(usize, usize)]) -> Graph<(), f64> {
    let edges: Vec<(usize, usize, f64)> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| (a % n, b % n, ((a * 7 + b * 11 + i) % 4) as f64))
        .filter(|&(a, b, _)| a != b)
        .collect();
    Graph::from_edges(n, edges)
}

#[test]
fn proptest_style_case() {
    // n=40, single edge (0,1): nodes 2..39 isolated. k=7 vantages
    // include node 5 (isolated, 5 % 3 != 0 so not a destination).
    let g = weighted_fixture(40, &[(0, 1)]);
    let vantages = strided_vantages(&g, 7);
    println!("vantages: {:?}", vantages);
    let dests: Vec<NodeId> = (0..40).step_by(3).map(|v| NodeId(v as u32)).collect();
    let reference = infer_map(&g, &vantages, Some(&dests), |&w| w);
    let batched = infer_map_batched(&g, &vantages, Some(&dests), |&w| w, 2).map;
    assert_eq!(reference.node_seen, batched.node_seen, "node masks diverge");
}
