//! The acceptance bar for the capacitated cascade: on a seeded GLP
//! graph under stressed capacities, the batched cascade (parallel BFS
//! forests + chunked load accumulation per round) beats the naive
//! per-flow, per-round reference by ≥ 2× — with the round-by-round
//! outcome bit-identical.
//!
//! Like `traffic_speedup.rs`, this is a *timing* test and lives alone
//! in its own test binary so the measurement does not contend with the
//! multi-thread equivalence suites. In debug builds the size drops and
//! only equivalence is asserted; the timing gate arms in release on
//! ≥ 4 cores (the release CI job).

use hotgen::baselines::glp;
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::parallel::default_threads;
use hotgen::sim::cascade::{cascade, cascade_naive, CascadeConfig};
use hotgen::sim::demand::OdDemand;
use hotgen::sim::traffic::{link_loads, RoutePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

mod common;
use common::Banded;

/// Integer-valued OD demand (same family as `te_cascade_equivalence`):
/// exact in f64 under any summation order, so batched and naive rounds
/// agree bit for bit.
struct IntegerDemand {
    n: usize,
}

impl OdDemand for IntegerDemand {
    fn node_count(&self) -> usize {
        self.n
    }
    fn demand(&self, src: usize, dst: usize) -> f64 {
        if src == dst {
            0.0
        } else {
            ((src * 7 + dst * 13) % 5) as f64
        }
    }
}

#[test]
fn batched_cascade_speedup_glp() {
    let (n, max_src) = if cfg!(debug_assertions) {
        (800, 60)
    } else {
        (5_000, 400)
    };
    let g = glp::generate(
        &glp::GlpConfig {
            n,
            ..glp::GlpConfig::default()
        },
        &mut StdRng::seed_from_u64(20030617),
    );
    let csr = CsrGraph::from_graph(&g);
    let threads = default_threads();
    let dem = Banded {
        inner: IntegerDemand { n },
        max_src,
    };
    // Capacities that force a real multi-round cascade: comfortable
    // headroom on most links, every 7th provisioned below its
    // intact-graph load.
    let loads = link_loads(&csr, &dem, RoutePolicy::TreePath, threads);
    let caps: Vec<f64> = loads
        .link_load
        .iter()
        .enumerate()
        .map(|(e, &l)| (l + 1.0) * if e % 7 == 0 { 0.8 } else { 1.5 })
        .collect();
    let cfg = CascadeConfig::default();

    let t0 = Instant::now();
    let slow = cascade_naive(&csr, &dem, &caps, &cfg);
    let naive_time = t0.elapsed();

    let t1 = Instant::now();
    let fast = cascade(&csr, &dem, &caps, &cfg, threads);
    let batched_time = t1.elapsed();

    // Exact agreement, always: structural equality covers every
    // per-round float bit for bit.
    assert_eq!(fast, slow, "batched vs naive cascade diverged");
    assert!(fast.converged && fast.failed_links() > 0);
    assert!(fast.rounds.len() >= 2, "capacities must actually cascade");

    let speedup = naive_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-9);
    println!(
        "glp{}: {} rounds, {} failed links; naive {:.3}s, batched({} threads) {:.3}s, speedup {:.2}x",
        n,
        fast.rounds.len(),
        fast.failed_links(),
        naive_time.as_secs_f64(),
        threads,
        batched_time.as_secs_f64(),
        speedup
    );
    if !cfg!(debug_assertions) && threads >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >= 2x over the per-round naive reference on {} threads, measured {:.2}x",
            threads,
            speedup
        );
    }
}
