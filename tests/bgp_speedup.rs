//! The acceptance bar for the policy-routing subsystem: batched
//! valley-free propagation completes a 50k-AS internet and the
//! chunk-scheduled sweep beats the single-thread run by ≥ 2× — with the
//! summary exactly identical (integer counters) at every thread count.
//!
//! Like `csr_speedup.rs` and `traffic_speedup.rs`, this is a *timing*
//! test and lives alone in its own test binary: cargo runs test
//! binaries sequentially and a single `#[test]` gets the whole process,
//! so the measurement does not contend with the 8-thread equivalence
//! suites. In debug builds the size drops and only equivalence is
//! asserted; the timing gate arms in release on ≥ 4 cores (the release
//! CI job).

use hotgen::baselines::ba;
use hotgen::bgp::{policy_summary, AsTopology};
use hotgen::graph::parallel::default_threads;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

#[test]
fn batched_propagation_speedup_ba50k() {
    let (n, n_sources) = if cfg!(debug_assertions) {
        (4_000, 160)
    } else {
        (50_000, 1_024)
    };
    // A 50k-AS internet with a degree-inferred hierarchy: the scale the
    // flat SoA route tables are built for.
    let g = ba::generate(n, 2, &mut StdRng::seed_from_u64(20030617));
    let t0 = Instant::now();
    let topo = AsTopology::from_graph_by_degree(&g, 10);
    let build_time = t0.elapsed();
    assert_eq!(topo.len(), n);
    let band: Vec<u32> = (0..n_sources as u32).collect();
    let threads = default_threads();

    let t1 = Instant::now();
    let serial = policy_summary(&topo, &band, 1);
    let serial_time = t1.elapsed();

    let t2 = Instant::now();
    let parallel = policy_summary(&topo, &band, threads);
    let parallel_time = t2.elapsed();

    // Exactly identical — the summary is integer counters merged in
    // chunk order, so there is not even a float tolerance to argue
    // about. (An 8-thread run must match too, whatever `threads` is.)
    assert_eq!(serial, parallel, "1 vs {} threads diverged", threads);
    assert_eq!(
        serial,
        policy_summary(&topo, &band, 8),
        "1 vs 8 threads diverged"
    );

    // The sweep did real work: every source saw the giant component.
    assert_eq!(serial.sources, n_sources as u64);
    assert!(serial.policy_reachable > 0);
    assert!(serial.sum_policy_hops >= serial.sum_shortest_hops);

    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9);
    println!(
        "ba{}: build {:.3}s; {} sources; serial {:.3}s, parallel({} threads) {:.3}s, speedup {:.2}x",
        n,
        build_time.as_secs_f64(),
        n_sources,
        serial_time.as_secs_f64(),
        threads,
        parallel_time.as_secs_f64(),
        speedup
    );
    if !cfg!(debug_assertions) && threads >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >= 2x over single-thread on {} threads, measured {:.2}x",
            threads,
            speedup
        );
    }
}
