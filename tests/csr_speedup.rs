//! The acceptance bar for the CSR port: on a seeded 20k-node GLP graph,
//! `par_betweenness` is ≥ 3× faster than the serial path on a 4-core
//! runner, with byte-identical output.
//!
//! This is a *timing* test, so it lives alone in its own test binary —
//! cargo runs test binaries sequentially, and a single `#[test]` gets
//! the whole process — to keep the measurement from contending with the
//! rest of the suite (the equivalence tests spawn up to 8 threads each,
//! which would distort both sides of the ratio and make the CI gate
//! flaky).

use hotgen::baselines::glp;
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::parallel::{default_threads, par_betweenness};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// In debug builds (tier-1 runs `cargo test -q`) the 20k workload is far
/// too slow, so the size drops to 2k and only byte-identity is asserted;
/// the release CI job (`cargo test --release -q`) runs the full-size
/// workload. The timing assertion additionally requires ≥ 4 available
/// cores — on smaller runners it is reported but not enforced, since a
/// speedup target is unmeetable on, e.g., 1 core.
#[test]
fn par_betweenness_speedup_glp_20k() {
    let n = if cfg!(debug_assertions) {
        2_000
    } else {
        20_000
    };
    let g = glp::generate(
        &glp::GlpConfig {
            n,
            ..glp::GlpConfig::default()
        },
        &mut StdRng::seed_from_u64(20030617),
    );
    let csr = CsrGraph::from_graph(&g);
    let threads = default_threads();

    let t0 = Instant::now();
    let serial = par_betweenness(&csr, 1);
    let serial_time = t0.elapsed();

    let t1 = Instant::now();
    let par = par_betweenness(&csr, threads);
    let par_time = t1.elapsed();

    // Byte-identical output, always.
    let serial_bits: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();
    let par_bits: Vec<u64> = par.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        serial_bits, par_bits,
        "parallel betweenness diverged from serial on glp{}",
        n
    );

    let speedup = serial_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9);
    println!(
        "glp{}: serial {:.2}s, parallel({} threads) {:.2}s, speedup {:.2}x",
        n,
        serial_time.as_secs_f64(),
        threads,
        par_time.as_secs_f64(),
        speedup
    );
    if !cfg!(debug_assertions) && threads >= 4 {
        assert!(
            speedup >= 3.0,
            "expected >= 3x speedup on {} threads, measured {:.2}x",
            threads,
            speedup
        );
    }
}
