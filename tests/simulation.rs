//! Integration tests for the simulation layer: protocols running on
//! topologies the generators produced, via the facade API.

use hotgen::prelude::*;
use hotgen::sim::bgp::{policy_inflation, AsNetwork};
use hotgen::sim::failure::single_link_failures;
use hotgen::sim::routing::{route, Demand, IgpMetric};
use hotgen::sim::traceroute::{infer_map, strided_vantages};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(seed: u64) -> (Census, TrafficMatrix) {
    let census = Census::synthesize(
        &CensusConfig {
            n_cities: 20,
            ..CensusConfig::default()
        },
        &mut StdRng::seed_from_u64(seed),
    );
    let traffic = TrafficMatrix::gravity(&census, &GravityConfig::default());
    (census, traffic)
}

#[test]
fn routing_conserves_demand_on_generated_isp() {
    let (census, traffic) = setup(1);
    let config = IspConfig {
        n_pops: 5,
        total_customers: 100,
        ..IspConfig::default()
    };
    let isp = generate_isp(&census, &traffic, &config, &mut StdRng::seed_from_u64(2));
    let customers: Vec<NodeId> = isp
        .graph
        .node_ids()
        .filter(|&v| isp.graph.node_weight(v).role == RouterRole::Customer)
        .collect();
    let demands: Vec<Demand> = customers
        .windows(2)
        .map(|w| Demand {
            src: w[0],
            dst: w[1],
            amount: 2.0,
        })
        .collect();
    let outcome = route(&isp.graph, &demands, IgpMetric::HopCount, |_, _| 1.0);
    // The ISP graph is connected: everything routes.
    assert!(outcome.unrouted.is_empty());
    let total: f64 = demands.iter().map(|d| d.amount).sum();
    assert!((outcome.routed_traffic - total).abs() < 1e-9);
    // Load on any link never exceeds total traffic.
    assert!(outcome.max_load() <= total + 1e-9);
    // Each demand's path has >= 1 hop.
    assert!(outcome.mean_hops() >= 1.0);
}

#[test]
fn failure_sim_agrees_with_cut_structure() {
    // On the ISP's access tree, every loaded link is a cut for someone.
    let (census, traffic) = setup(3);
    let config = IspConfig {
        n_pops: 4,
        total_customers: 60,
        ..IspConfig::default()
    };
    let isp = generate_isp(&census, &traffic, &config, &mut StdRng::seed_from_u64(4));
    let customers: Vec<NodeId> = isp
        .graph
        .node_ids()
        .filter(|&v| isp.graph.node_weight(v).role == RouterRole::Customer)
        .collect();
    let demands: Vec<Demand> = customers
        .windows(2)
        .step_by(2)
        .map(|w| Demand {
            src: w[0],
            dst: w[1],
            amount: 1.0,
        })
        .collect();
    let summary = single_link_failures(&isp.graph, &demands, IgpMetric::HopCount, |_, _| 1.0);
    // Customer uplinks are bridges: most failures strand something.
    assert!(summary.stranding_fraction > 0.5);
    // Stretch is a ratio >= 1 whenever defined.
    assert!(summary.mean_stretch >= 1.0);
}

#[test]
fn bgp_policy_never_shorter_and_internet_stays_reachable() {
    let (census, traffic) = setup(5);
    let config = InternetConfig {
        n_isps: 15,
        max_pops: 6,
        customers_per_pop: 5,
        ..InternetConfig::default()
    };
    let net = generate_internet(&census, &traffic, &config, &mut StdRng::seed_from_u64(6));
    let asn = AsNetwork::from_internet(&net);
    // Valley-free >= shortest for all pairs; tier-1 spine keeps policy
    // reachability at 1.
    for src in 0..asn.len() {
        let vf = asn.valley_free_distances(src);
        let sp = asn.shortest_distances(src);
        for dst in 0..asn.len() {
            match (vf[dst], sp[dst]) {
                (Some(v), Some(s)) => assert!(v >= s),
                (Some(_), None) => panic!("policy route without graph route"),
                _ => {}
            }
        }
    }
    let stats = policy_inflation(&asn);
    assert!((stats.policy_reachability - 1.0).abs() < 1e-9);
    assert!(stats.mean_inflation >= 1.0);
}

#[test]
fn traceroute_inference_is_conservative() {
    let (census, traffic) = setup(7);
    let config = IspConfig {
        n_pops: 5,
        total_customers: 80,
        ..IspConfig::default()
    };
    let isp = generate_isp(&census, &traffic, &config, &mut StdRng::seed_from_u64(8));
    let few = infer_map(&isp.graph, &strided_vantages(&isp.graph, 2), None, |l| {
        l.length.max(1e-9)
    });
    let many = infer_map(&isp.graph, &strided_vantages(&isp.graph, 16), None, |l| {
        l.length.max(1e-9)
    });
    // Coverage is monotone in vantage count and bounded by the truth.
    assert!(many.edge_coverage >= few.edge_coverage - 1e-12);
    assert!(many.edge_coverage <= 1.0 + 1e-12);
    // The inferred map never invents links.
    let inferred = many.to_graph(&isp.graph);
    assert!(inferred.edge_count() <= isp.graph.edge_count());
}

#[test]
fn surrogate_and_report_roundtrip() {
    // The assortativity/rich-club metrics + surrogate work through the
    // facade on a generated topology.
    use hotgen::metrics::assortativity::{assortativity, rich_club_coefficient};
    use hotgen::metrics::surrogate::degree_surrogate;
    let (census, traffic) = setup(9);
    let config = IspConfig {
        n_pops: 4,
        total_customers: 80,
        ..IspConfig::default()
    };
    let isp = generate_isp(&census, &traffic, &config, &mut StdRng::seed_from_u64(10));
    // Assortativity is defined (degree variance exists) and in range.
    // Note: unlike AS graphs, this access-chain-heavy router graph can be
    // mildly assortative — Esau–Williams chains contribute many 2–2 edges.
    let r = assortativity(&isp.graph).expect("ISP has degree variance");
    assert!(
        (-1.0..=1.0).contains(&r),
        "assortativity {} out of range",
        r
    );
    let surrogate = degree_surrogate(&isp.graph, 10, &mut StdRng::seed_from_u64(11));
    assert_eq!(surrogate.degree_sequence(), isp.graph.degree_sequence());
    // Identical degree sequences give identical assortativity *support*
    // (both defined), though rewiring may change the value.
    assert!(assortativity(&surrogate).is_some());
    // Rich-club defined for k = 1 on both.
    let _ = rich_club_coefficient(&isp.graph, 1);
    let report = MetricReport::compute("isp", &isp.graph);
    assert!((report.assortativity.unwrap() - r).abs() < 1e-12);
}
