//! Golden-snapshot suite for the scenario engine.
//!
//! Every registered scenario runs at `Scale::Golden` with the canonical
//! seed and its full structured JSON output is diffed against the
//! checked-in snapshot in `tests/golden/<id>.json`. Any behavioral
//! change to an experiment — intended or not — shows up as a diff here.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test exp_golden
//! git diff tests/golden/   # review what actually changed
//! ```

use hot_exp::registry::{self, RunCtx, Scale};
use hot_exp::report::ExpStatus;
use hot_exp::SEED;
use std::path::PathBuf;

fn golden_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.json", id))
}

fn ctx(threads: usize) -> RunCtx {
    RunCtx {
        scale: Scale::Golden,
        seed: SEED,
        threads,
        snapshot_dir: None,
    }
}

/// Runs one scenario at golden scale and compares (or, with
/// `UPDATE_GOLDEN=1`, rewrites) its snapshot.
fn check(id: &str) {
    let spec = registry::find(id).expect("scenario is registered");
    let report = (spec.run)(ctx(hotgen::graph::parallel::default_threads()));
    assert_eq!(report.scenario, id, "report id must match the registry id");
    assert_eq!(
        report.status,
        ExpStatus::Ok,
        "golden-scale parameters must not be degenerate for {}",
        id
    );
    let json = report.to_json().pretty();
    let path = golden_path(id);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &json).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden snapshot {}; regenerate with UPDATE_GOLDEN=1 \
             cargo test --test exp_golden",
            path.display()
        )
    });
    if expected != json {
        // Point at the first differing line so the failure is readable
        // without a 500-line assert_eq dump.
        let line = expected
            .lines()
            .zip(json.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| expected.lines().count().min(json.lines().count()) + 1);
        panic!(
            "{} diverged from its golden snapshot at line {} \
             (UPDATE_GOLDEN=1 cargo test --test exp_golden to accept):\n\
             expected: {}\n\
             actual:   {}",
            id,
            line,
            expected.lines().nth(line - 1).unwrap_or("<eof>"),
            json.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}

macro_rules! golden {
    ($($name:ident => $id:literal),+ $(,)?) => {
        $(#[test]
        fn $name() {
            check($id);
        })+
    };
}

golden! {
    golden_e1_fkp_regimes => "e1",
    golden_e2_fkp_ccdf => "e2",
    golden_e3_buyatbulk_degree => "e3",
    golden_e4_buyatbulk_cost => "e4",
    golden_e5_plr_powerlaw => "e5",
    golden_e6_generator_matrix => "e6",
    golden_e7_national_isp => "e7",
    golden_e8_as_vs_router => "e8",
    golden_e9_ablations => "e9",
    golden_e10_robustness => "e10",
    golden_e11_level2_ring => "e11",
    golden_e12_routing_load => "e12",
    golden_e13_policy_inflation => "e13",
    golden_e14_traceroute_bias => "e14",
    golden_e15_traffic_load => "e15",
    golden_e16_traffic_failure => "e16",
    golden_e17_policy_routing => "e17",
    golden_e18_te_cascade => "e18",
    golden_e19_probe_bias => "e19",
    golden_e20_temporal_growth => "e20",
}

/// The registry and the golden directory must stay in one-to-one
/// correspondence: a scenario added without a snapshot (or a stale
/// snapshot left behind) fails here.
#[test]
fn golden_directory_matches_registry() {
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        return; // files may legitimately be mid-regeneration
    }
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("tests/golden exists")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".json"))
        .map(|n| n.trim_end_matches(".json").to_string())
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = registry::registry()
        .iter()
        .map(|s| s.id.to_string())
        .collect();
    expected.sort();
    assert_eq!(on_disk, expected);
}

/// Thread count must never leak into the structured output. The full
/// sweep is exercised in CI (`expctl --all --threads 1` vs `8` diffed
/// byte-for-byte); here the scenarios that use the parallel kernels —
/// including the batched traffic engine behind E15/E16, the batched
/// valley-free propagation behind E17, the capacitated TE/cascade
/// loops behind E18, and the batched probe pipeline behind E19 — run
/// at 1 and 4 workers.
#[test]
fn thread_count_does_not_change_reports() {
    for id in ["e1", "e10", "e12", "e15", "e16", "e17", "e18", "e19"] {
        let spec = registry::find(id).expect("registered");
        let serial = (spec.run)(ctx(1)).to_json().pretty();
        let parallel = (spec.run)(ctx(4)).to_json().pretty();
        assert_eq!(serial, parallel, "{} output depends on thread count", id);
    }
}

/// The snapshot cache must be invisible in the output: E15 run cold
/// (writing the cache), warm (replaying it), and with no cache at all
/// must emit byte-identical JSON — and the warm run must actually have
/// hit the cache file the cold run wrote.
#[test]
fn snapshot_cache_replays_identical_bytes() {
    let dir = std::env::temp_dir().join(format!("hotsnap-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cached_ctx = || RunCtx {
        scale: Scale::Golden,
        seed: SEED,
        threads: 1,
        snapshot_dir: Some(dir.clone()),
    };
    let spec = registry::find("e15").expect("registered");
    let uncached = (spec.run)(ctx(1)).to_json().pretty();
    let cold = (spec.run)(cached_ctx()).to_json().pretty();
    let snaps: Vec<_> = std::fs::read_dir(&dir)
        .expect("cold run created the cache dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "snap"))
        .collect();
    assert_eq!(snaps.len(), 1, "cold E15 writes exactly one snapshot");
    let mtime = std::fs::metadata(&snaps[0]).unwrap().modified().unwrap();
    let warm = (spec.run)(cached_ctx()).to_json().pretty();
    assert_eq!(
        std::fs::metadata(&snaps[0]).unwrap().modified().unwrap(),
        mtime,
        "warm run must reuse the snapshot, not rewrite it"
    );
    assert_eq!(uncached, cold, "cache write changed the output");
    assert_eq!(cold, warm, "cache replay changed the output");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Degenerate parameters skip instead of panicking, and the skip is
/// visible in the structured output.
#[test]
fn degenerate_params_skip_cleanly() {
    use hot_exp::scenarios::{e1, e15, e16, e17, e18, e5};
    let report = e15::run(
        &e15::Params {
            glp_n: 3,
            ..e15::Params::golden()
        },
        ctx(1),
    );
    assert!(matches!(report.status, ExpStatus::Skipped { .. }));
    // More POPs than cities (or zero POPs) must skip, not trip the ISP
    // generator's asserts.
    let report = e15::run(
        &e15::Params {
            n_pops: 0,
            ..e15::Params::golden()
        },
        ctx(1),
    );
    assert!(matches!(report.status, ExpStatus::Skipped { .. }));
    let report = e16::run(
        &e16::Params {
            total_customers: 0,
            ..e16::Params::golden()
        },
        ctx(1),
    );
    assert!(matches!(report.status, ExpStatus::Skipped { .. }));
    let report = e16::run(
        &e16::Params {
            cities: 3,
            ..e16::Params::golden() // golden fail_pops = 6 > 3 cities
        },
        ctx(1),
    );
    assert!(matches!(report.status, ExpStatus::Skipped { .. }));
    let report = e1::run(
        &e1::Params {
            n: 1,
            alphas: vec![1.0],
            seeds_per_alpha: 1,
        },
        ctx(1),
    );
    match &report.status {
        ExpStatus::Skipped { reason } => assert!(reason.contains("n = 1"), "{}", reason),
        other => panic!("expected skip, got {:?}", other),
    }
    let json = report.to_json().pretty();
    assert!(json.contains("\"status\": \"skipped\""));
    let report = e5::run(
        &e5::Params {
            n_cells: 0,
            resolution: 0,
            samples: 0,
            ccdf_steps: 5,
        },
        ctx(1),
    );
    assert!(matches!(report.status, ExpStatus::Skipped { .. }));
    // Fewer ISPs than the tier-1 clique must skip, not panic inside the
    // internet generator.
    let report = e17::run(
        &e17::Params {
            n_isps: 1,
            ..e17::Params::golden()
        },
        ctx(1),
    );
    assert!(matches!(report.status, ExpStatus::Skipped { .. }));
    // A sub-unity headroom or a zero threshold must skip the
    // capacitated scenario, not trip the provisioning asserts.
    let report = e18::run(
        &e18::Params {
            headroom: 0.5,
            ..e18::Params::golden()
        },
        ctx(1),
    );
    assert!(matches!(report.status, ExpStatus::Skipped { .. }));
    let report = e18::run(
        &e18::Params {
            cascade_threshold: 0.0,
            ..e18::Params::golden()
        },
        ctx(1),
    );
    assert!(matches!(report.status, ExpStatus::Skipped { .. }));
}
