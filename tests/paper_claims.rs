//! The paper's quantitative claims as executable assertions — a cheap,
//! always-on version of the E1–E10 experiment suite. If one of these
//! fails, the reproduction no longer reproduces.

use hotgen::core::buyatbulk::mmp;
use hotgen::graph::tree::is_tree;
use hotgen::metrics::expfit::{classify, TailClass};
use hotgen::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §3.1 / FKP: alpha below 1/sqrt(2) yields a star.
#[test]
fn claim_fkp_small_alpha_star() {
    let config = FkpConfig {
        n: 500,
        alpha: 0.5,
        ..FkpConfig::default()
    };
    let topo = fkp::grow(&config, &mut StdRng::seed_from_u64(1));
    assert_eq!(fkp::classify(&topo), fkp::TopologyClass::Star);
}

/// §3.1 / FKP: intermediate alpha yields heavy-tailed hubs; huge alpha
/// yields a light-tailed distance tree.
#[test]
fn claim_fkp_regime_transition() {
    let hubs = fkp::grow(
        &FkpConfig {
            n: 3000,
            alpha: 8.0,
            ..FkpConfig::default()
        },
        &mut StdRng::seed_from_u64(2),
    );
    let distance = fkp::grow(
        &FkpConfig {
            n: 3000,
            alpha: 3000.0,
            ..FkpConfig::default()
        },
        &mut StdRng::seed_from_u64(2),
    );
    let hub_max = hubs.degree_sequence().into_iter().max().unwrap();
    let dist_max = distance.degree_sequence().into_iter().max().unwrap();
    assert!(
        hub_max > 10 * dist_max,
        "hub {} vs distance {}",
        hub_max,
        dist_max
    );
    assert_eq!(
        classify(&distance.degree_sequence()).class,
        TailClass::Exponential
    );
}

/// §4.2, the headline: MMP buy-at-bulk with the realistic catalog yields
/// trees with exponential degree distributions.
#[test]
fn claim_buyatbulk_exponential_trees() {
    let cost = LinkCost::cables_only(CableCatalog::realistic_2003());
    let mut pooled = Vec::new();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = Instance::random_uniform(300, 15.0, cost.clone(), &mut rng);
        let solution = mmp::solve(&instance, &mut rng);
        assert!(is_tree(&solution.to_graph(&instance)));
        pooled.extend(solution.degree_sequence());
    }
    assert_eq!(classify(&pooled).class, TailClass::Exponential);
}

/// §3.1 / HOT-PLR: the optimized design minimizes expected loss AND has
/// the heaviest loss tail.
#[test]
fn claim_plr_optimization_creates_heavy_tails() {
    let base = PlrConfig {
        n_cells: 100,
        density: SparkDensity::Exponential { rate: 20.0 },
        design: Design::HotOptimal,
        resolution: 50_000,
    };
    let hot = plr::solve(&base);
    let uniform = plr::solve(&PlrConfig {
        design: Design::UniformGrid,
        ..base
    });
    assert!(hot.expected_loss() < uniform.expected_loss());
    // Tail heaviness via max/median cell loss.
    let spread = |s: &hotgen::core::plr::PlrSolution| {
        let mut lens: Vec<f64> = (0..s.n_cells()).map(|i| s.cell_loss(i)).collect();
        lens.sort_by(|a, b| a.partial_cmp(b).unwrap());
        lens[lens.len() - 1] / lens[lens.len() / 2]
    };
    assert!(spread(&hot) > 5.0 * spread(&uniform));
}

/// §4 footnote 7: a redundancy requirement breaks the tree structure.
#[test]
fn claim_redundancy_breaks_tree() {
    use hotgen::core::isp::backbone::{design, BackboneConfig};
    let mut rng = StdRng::seed_from_u64(3);
    let pops: Vec<Point> = (0..10)
        .map(|_| BoundingBox::unit().sample_uniform(&mut rng))
        .collect();
    let tree = design(
        &pops,
        |_, _| 1.0,
        &BackboneConfig {
            redundancy: false,
            shortcut_pairs: 0,
            ..Default::default()
        },
    );
    let mesh = design(
        &pops,
        |_, _| 1.0,
        &BackboneConfig {
            redundancy: true,
            shortcut_pairs: 0,
            ..Default::default()
        },
    );
    assert_eq!(tree.edges.len(), 9); // spanning tree
    assert!(mesh.edges.len() > 9); // tree is gone
}

/// §3.2: AS degrees heavy-tailed while router degrees are capped, from
/// one generated economy.
#[test]
fn claim_as_vs_router_degree_laws() {
    let census = Census::synthesize(
        &CensusConfig {
            n_cities: 15,
            ..CensusConfig::default()
        },
        &mut StdRng::seed_from_u64(4),
    );
    let traffic = TrafficMatrix::gravity(&census, &GravityConfig::default());
    let config = InternetConfig {
        n_isps: 25,
        max_pops: 8,
        customers_per_pop: 6,
        ..InternetConfig::default()
    };
    let net = generate_internet(&census, &traffic, &config, &mut StdRng::seed_from_u64(5));
    let as_max = *net.as_degrees().iter().max().unwrap();
    // Tier-1 providers accumulate many AS neighbors...
    assert!(as_max >= 8, "max AS degree {}", as_max);
    // ...while no router anywhere exceeds the line-card cap.
    let router_max = net
        .combined_router_graph()
        .degree_sequence()
        .into_iter()
        .max()
        .unwrap();
    assert!((router_max as usize) <= net.router_degree_cap);
}

/// §3.1 robust-yet-fragile: optimized hub trees survive random failure
/// far better than targeted attack.
#[test]
fn claim_robust_yet_fragile() {
    use hotgen::metrics::robustness::{degradation, robustness_score, RemovalPolicy};
    let topo = fkp::grow(
        &FkpConfig {
            n: 800,
            alpha: 10.0,
            ..FkpConfig::default()
        },
        &mut StdRng::seed_from_u64(6),
    );
    let g = topo.to_graph();
    let fractions = [0.02, 0.05, 0.1];
    let random = degradation(
        &g,
        RemovalPolicy::RandomFailure,
        &fractions,
        &mut StdRng::seed_from_u64(7),
    );
    let attack = degradation(
        &g,
        RemovalPolicy::DegreeAttack,
        &fractions,
        &mut StdRng::seed_from_u64(7),
    );
    assert!(robustness_score(&random) > 5.0 * robustness_score(&attack));
}

/// E10, robust yet fragile, via the parallel CSR sweep: on a seeded HOT
/// hub tree, removing the top 5% of nodes by degree shatters the giant
/// component while removing a random 5% barely dents it.
#[test]
fn claim_e10_attack_giant_well_below_random() {
    use hotgen::graph::parallel::default_threads;
    use hotgen::metrics::robustness::{degradation_curve, RemovalPolicy};
    let topo = fkp::grow(
        &FkpConfig {
            n: 1000,
            alpha: 10.0,
            ..FkpConfig::default()
        },
        &mut StdRng::seed_from_u64(10),
    );
    let g = topo.to_graph();
    let threads = default_threads();
    let random = degradation_curve(
        &g,
        RemovalPolicy::RandomFailure,
        &[0.05],
        &mut StdRng::seed_from_u64(11),
        threads,
    );
    let attack = degradation_curve(
        &g,
        RemovalPolicy::DegreeAttack,
        &[0.05],
        &mut StdRng::seed_from_u64(11),
        threads,
    );
    // Robust: random failure keeps most of the tree connected.
    assert!(
        random[0].giant_fraction > 0.6,
        "random 5% failure left giant {}",
        random[0].giant_fraction
    );
    // Fragile: attacking the optimization-built hubs is catastrophic —
    // "well below" pinned at a 4x gap.
    assert!(
        attack[0].giant_fraction < random[0].giant_fraction / 4.0,
        "attack giant {} vs random giant {}",
        attack[0].giant_fraction,
        random[0].giant_fraction
    );
}

/// E1 via the scenario registry: the full star → heavy-tailed hub tree →
/// exponential distance tree transition, asserted on the typed regime
/// rows the `e1` scenario itself computes.
#[test]
fn claim_e1_regime_transition_via_scenario_structs() {
    use hot_exp::scenarios::e1;
    use hotgen::core::fkp::TopologyClass;
    let p = e1::Params {
        n: 800,
        alphas: vec![0.5, 6.0, 800.0],
        seeds_per_alpha: 1,
    };
    let rows = e1::regime_rows(&p, 8);
    assert_eq!(rows.len(), 3);
    // alpha < 1/sqrt(2): everything attaches to the root.
    assert_eq!(rows[0].class, TopologyClass::Star);
    assert!(
        rows[0].root_share > 0.95,
        "root share {}",
        rows[0].root_share
    );
    // Intermediate alpha: hubs at many scales, heavy-tailed degrees.
    assert_eq!(rows[1].class, TopologyClass::HubTree);
    assert_eq!(rows[1].tail, TailClass::PowerLaw);
    // alpha = Omega(sqrt(n)) (here alpha = n): distance-dominated,
    // bounded degrees with an exponential tail.
    assert_eq!(rows[2].class, TopologyClass::DistanceTree);
    assert_eq!(rows[2].tail, TailClass::Exponential);
    // The hub regime's maximum degree dwarfs the distance regime's.
    assert!(
        rows[1].max_deg > 10 * rows[2].max_deg,
        "hub {} vs distance {}",
        rows[1].max_deg,
        rows[2].max_deg
    );
}

/// E5 via the scenario registry: the PLR loss CCDF of the HOT-optimal
/// design is classified as a power-law tail (straight log-log line over
/// the sampled range) while still minimizing expected loss; the generic
/// designs have far lighter tails.
#[test]
fn claim_e5_plr_powerlaw_tail_via_scenario_structs() {
    use hot_exp::scenarios::e5;
    let p = e5::Params {
        n_cells: 100,
        resolution: 50_000,
        samples: 20_000,
        ccdf_steps: 20,
    };
    let curves = e5::design_curves(&p, 42);
    let hot = &curves[0];
    let uniform = &curves[1];
    assert_eq!(hot.name, "hot-optimal");
    assert_eq!(uniform.name, "uniform-grid");
    // The optimized design wins on the objective...
    assert!(hot.expected_loss < uniform.expected_loss);
    // ...and its loss CCDF is power-law: a straight line on log-log
    // axes (high r²) with a genuine slope, spanning the sampled range.
    let (slope, r2) = hot.loglog_fit.expect("hot-optimal CCDF has a log-log fit");
    assert!(r2 > 0.9, "log-log r² {}", r2);
    assert!(slope > 0.1, "log-log slope {}", slope);
    // Generic placement has a far lighter tail.
    assert!(
        hot.tail_ratio > 5.0 * uniform.tail_ratio,
        "hot p99/median {} vs uniform {}",
        hot.tail_ratio,
        uniform.tail_ratio
    );
}

/// E15 via the scenario registry, the E12 routing-load claim made
/// quantitative: routing ≥ 1M gravity OD flows, the designed ISP
/// carries its peak link load on a provisioned core (backbone/metro)
/// link and concentrates load onto the core well beyond the core's
/// share of links, while the degree-based generators concentrate the
/// same demand class on the links around their few top-degree hubs —
/// far more than the design does.
#[test]
fn claim_e15_core_vs_hub_load_concentration() {
    use hot_exp::scenarios::e15;
    let p = e15::Params::golden();
    let rows = e15::traffic_rows(
        &p,
        &hot_exp::RunCtx {
            scale: hot_exp::Scale::Golden,
            seed: hot_exp::SEED,
            threads: hotgen::graph::parallel::default_threads(),
            snapshot_dir: None,
        },
    );
    let row = |topology: &str, model: &str| {
        rows.iter()
            .find(|r| r.topology == topology && r.model == model)
            .unwrap_or_else(|| panic!("row {}/{} missing", topology, model))
    };
    let isp = row("isp(designed)", "gravity");
    let glp = row("glp", "gravity");
    let ba = row("ba(m=2)", "gravity");
    // The golden preset really is a millions-of-flows workload.
    assert!(
        glp.routed_flows >= 1_000_000,
        "glp routed {} flows",
        glp.routed_flows
    );
    assert!(rows.iter().map(|r| r.routed_flows).sum::<u64>() >= 4_000_000);
    // HOT side: the single most-loaded link is a designed trunk, and
    // the core's load share is well above its link share.
    assert_eq!(isp.peak_on_core, Some(true));
    let core_share = isp.core_load_share.expect("isp rows classify core links");
    let core_links = isp
        .core_link_fraction
        .expect("isp rows classify core links");
    assert!(
        core_share > 1.5 * core_links,
        "core load {} vs core links {}",
        core_share,
        core_links
    );
    // Degree side: the hub neighborhood soaks up the majority of load...
    assert!(
        glp.hub_load_share > 0.5,
        "glp hub share {}",
        glp.hub_load_share
    );
    assert!(glp.hub_link_fraction < 0.4);
    // ...far beyond what the capped-degree design routes through *its*
    // top-degree routers.
    assert!(
        glp.hub_load_share > 2.0 * isp.hub_load_share,
        "glp hub {} vs isp hub {}",
        glp.hub_load_share,
        isp.hub_load_share
    );
    assert!(
        ba.hub_load_share > 2.0 * isp.hub_load_share,
        "ba hub {} vs isp hub {}",
        ba.hub_load_share,
        isp.hub_load_share
    );
}

/// §1: two generators matched on the degree-tail class still differ on
/// other metrics (the critique of descriptive modeling).
#[test]
fn claim_matched_tail_unmatched_structure() {
    use hotgen::baselines::ba;
    let fkp_graph = fkp::grow(
        &FkpConfig {
            n: 800,
            alpha: 10.0,
            ..FkpConfig::default()
        },
        &mut StdRng::seed_from_u64(8),
    )
    .to_graph();
    let ba_graph = ba::generate(800, 2, &mut StdRng::seed_from_u64(9));
    let a = MetricReport::compute("fkp", &fkp_graph);
    let b = MetricReport::compute("ba", &ba_graph);
    // Both heavy-tailed...
    assert_eq!(a.tail, TailClass::PowerLaw);
    assert_eq!(b.tail, TailClass::PowerLaw);
    // ...yet structurally far apart: BA (m=2) has cycles and expands
    // faster; the FKP tree concentrates load far more.
    assert!(b.resilience > 2.0 * a.resilience);
    assert!(b.expansion3 > 1.2 * a.expansion3);
}

/// E17 / §2.3: valley-free export has a measurable cost on every
/// generated topology (policy inflation exceeds zero), and the cost is a
/// generator fingerprint — the economics-built internet routes
/// near-shortest where the BA-style degree hierarchy inflates heavily
/// and even loses reachability.
#[test]
fn claim_e17_policy_inflation_differs_by_generator() {
    use hot_exp::scenarios::e17;
    let p = e17::Params::golden();
    let rows = e17::policy_rows(
        &p,
        hot_exp::SEED,
        hotgen::graph::parallel::default_threads(),
    );
    let row = |topology: &str| {
        rows.iter()
            .find(|r| r.topology == topology)
            .unwrap_or_else(|| panic!("row {} missing", topology))
    };
    let hot = &row("hot(internet)").summary;
    let glp = &row("glp").summary;
    let ba = &row("ba(m=2)").summary;
    // Policy inflation exceeds zero on every topology: some pair pays
    // extra hops for valley-freedom (exact integer counters, no
    // tolerance needed).
    for (name, s) in [("hot", hot), ("glp", glp), ("ba", ba)] {
        assert!(
            s.sum_policy_hops > s.sum_shortest_hops,
            "{}: policy {} vs shortest {} hops",
            name,
            s.sum_policy_hops,
            s.sum_shortest_hops
        );
        assert!(s.inflated_fraction() > 0.0, "{} has no inflated pair", name);
    }
    // ...and the magnitude separates the generators: the designed
    // internet stays near-shortest (about 1% of pairs inflated), while
    // the BA degree hierarchy inflates an order of magnitude more
    // and denies reachability the raw graph allows.
    assert!(
        hot.inflated_fraction() < 0.05,
        "hot inflated {}",
        hot.inflated_fraction()
    );
    assert!(
        ba.inflated_fraction() > 10.0 * hot.inflated_fraction(),
        "ba {} vs hot {}",
        ba.inflated_fraction(),
        hot.inflated_fraction()
    );
    assert!(
        ba.inflated_fraction() > 10.0 * glp.inflated_fraction(),
        "ba {} vs glp {}",
        ba.inflated_fraction(),
        glp.inflated_fraction()
    );
    assert_eq!(hot.policy_reachability(), 1.0, "hot loses reachability");
    assert!(
        ba.policy_reachability() < 1.0,
        "ba keeps full reachability ({})",
        ba.policy_reachability()
    );
    // The classification is economics-grounded on the HOT side: the
    // tier-1 clique the generator wired is exactly what the labels find.
    let hot_row = row("hot(internet)");
    assert_eq!(hot_row.class_counts[0], p.tier1_count);
}

/// E18 / §3: "robust yet fragile", capacitated edition. The designed
/// ISP provisions cable tiers against its anticipated busy-hour
/// envelope, so a rank-biased flash crowd lands inside the engineering
/// margin and no link overloads; the degree-grown topologies spend a
/// comparable capital budget proportional to degree and their hub
/// trunks cascade. Amplification (surge peak utilization over baseline
/// peak) must rank HOT strictly below the BA hub topology — the
/// acceptance criterion for the capacitated subsystem.
#[test]
fn claim_e18_hot_degrades_gracefully_vs_hub_cascade() {
    use hot_exp::scenarios::e18;
    let p = e18::Params::golden();
    let ctx = hot_exp::RunCtx {
        scale: hot_exp::Scale::Golden,
        seed: hot_exp::SEED,
        threads: hotgen::graph::parallel::default_threads(),
        snapshot_dir: None,
    };
    let rows = e18::cascade_rows(&p, &ctx);
    let row = |topology: &str| {
        rows.iter()
            .find(|r| r.topology == topology)
            .unwrap_or_else(|| panic!("row {} missing", topology))
    };
    let hot = row("isp(designed)");
    let glp = row("glp");
    let ba = row("ba(m=2)");
    // The headline ordering: the designed network amplifies the surge
    // strictly less than the hub topology (and the GLP middle ground
    // sits between them at golden scale).
    assert!(
        hot.amplification < ba.amplification,
        "hot {} vs ba {}",
        hot.amplification,
        ba.amplification
    );
    assert!(
        hot.amplification < glp.amplification && glp.amplification < ba.amplification,
        "hot {} / glp {} / ba {}",
        hot.amplification,
        glp.amplification,
        ba.amplification
    );
    // Graceful degradation is absolute, not just relative: the ISP's
    // envelope provisioning absorbs the flash crowd outright — zero
    // failed links, zero stranded traffic, every TE trajectory intact.
    assert_eq!(hot.failed_links, 0, "hot fails {} links", hot.failed_links);
    assert_eq!(hot.stranded_fraction, 0.0);
    assert_eq!(hot.baseline.overloaded_links, 0);
    // The hub topology collapses: most of its links fail, most of the
    // offered traffic is stranded, and the surviving capital is a
    // fraction of what it provisioned — even though its total capacity
    // budget is no smaller than the ISP's.
    assert!(
        ba.failed_link_share > 0.5,
        "ba failed share {}",
        ba.failed_link_share
    );
    assert!(
        ba.stranded_fraction > 0.5,
        "ba stranded {}",
        ba.stranded_fraction
    );
    assert!(
        hot.surviving_capacity_share > ba.surviving_capacity_share,
        "surviving capital: hot {} vs ba {}",
        hot.surviving_capacity_share,
        ba.surviving_capacity_share
    );
    assert!(
        ba.total_capacity >= hot.total_capacity,
        "the comparison is not capital-starved: ba {} vs hot {}",
        ba.total_capacity,
        hot.total_capacity
    );
    // Both cascades reach their fixed points.
    assert!(hot.cascade_converged && glp.cascade_converged && ba.cascade_converged);
}

/// E19 / §1, §3.2: a million-probe campaign against known truths. The
/// tree-like HOT internet is essentially fully observable from a
/// handful of vantages, while the degree-driven meshes hide redundant
/// links at every campaign size — and the maps they yield flatten the
/// degree tail and overstate load hierarchy. This is the acceptance
/// criterion for the batched probe pipeline.
#[test]
fn claim_e19_probes_see_trees_but_meshes_hide_redundancy() {
    use hot_exp::scenarios::e19;
    let p = e19::Params::golden();
    let ctx = hot_exp::RunCtx {
        scale: hot_exp::Scale::Golden,
        seed: hot_exp::SEED,
        threads: hotgen::graph::parallel::default_threads(),
        snapshot_dir: None,
    };
    let rows = e19::probe_rows(&p, &ctx);
    // Campaign scale: even the golden preset fires over a million
    // probes, and every one completes (the truths are connected).
    let sent: u64 = rows.iter().map(|r| r.stats.probes_sent).sum();
    let completed: u64 = rows.iter().map(|r| r.stats.probes_completed).sum();
    assert!(sent >= 1_000_000, "only {} probes fired", sent);
    assert_eq!(sent, completed, "probes lost on connected truths");
    let row = |topology: &str, k: usize| {
        rows.iter()
            .find(|r| r.topology == topology && r.vantage_count == k)
            .unwrap_or_else(|| panic!("row ({}, {}) missing", topology, k))
    };
    // One vantage already separates the designs: the HOT access trees
    // put ~90% of links on that single forwarding tree, the meshes
    // expose only their own tree's worth of edges.
    assert!(row("hot(internet)", 1).bias.edge_coverage > 0.85);
    assert!(row("glp", 1).bias.edge_coverage < 0.5);
    assert!(row("ba", 1).bias.edge_coverage < 0.5);
    // Sixteen vantages finish the HOT map outright; the meshes still
    // hide links, report a flattened mean degree, and concentrate the
    // observed betweenness harder than the truth.
    let hot = row("hot(internet)", 16);
    assert_eq!(hot.bias.node_coverage, 1.0);
    assert_eq!(hot.bias.edge_coverage, 1.0);
    for name in ["glp", "ba"] {
        let r = row(name, 16);
        assert!(
            r.bias.edge_coverage < 0.95,
            "{} edge coverage {}",
            name,
            r.bias.edge_coverage
        );
        assert!(
            r.bias.observed_degree.mean < r.bias.true_degree.mean,
            "{}: observed mean {} vs true {}",
            name,
            r.bias.observed_degree.mean,
            r.bias.true_degree.mean
        );
        assert!(
            r.bias.observed_betweenness.gini > r.bias.true_betweenness.gini,
            "{}: observed gini {} vs true {}",
            name,
            r.bias.observed_betweenness.gini,
            r.bias.true_betweenness.gini
        );
        assert!(
            r.bias.observed_betweenness.top_decile_share > r.bias.true_betweenness.top_decile_share,
            "{} top-decile share",
            name
        );
    }
    // The flattened tail is visible threshold by threshold: at sixteen
    // vantages the GLP observed CCDF never exceeds the truth and sits
    // strictly below it somewhere.
    let glp = row("glp", 16);
    assert!(glp
        .bias
        .degree_ccdf
        .iter()
        .all(|pt| pt.observed_ccdf <= pt.true_ccdf));
    assert!(glp
        .bias
        .degree_ccdf
        .iter()
        .any(|pt| pt.observed_ccdf < pt.true_ccdf));
    // And the plateau is real: even the largest GLP campaign (256
    // vantages, half a million probes) never recovers the full truth.
    assert!(row("glp", 256).bias.edge_coverage < 1.0);
    // Coverage is monotone in the vantage sweep on every topology.
    for topology in ["hot(internet)", "glp", "ba"] {
        let covs: Vec<f64> = rows
            .iter()
            .filter(|r| r.topology == topology)
            .map(|r| r.bias.edge_coverage)
            .collect();
        assert!(
            covs.windows(2).all(|w| w[0] <= w[1]),
            "{} coverage not monotone: {:?}",
            topology,
            covs
        );
    }
}

/// §5 / E20 extension: HOT *stays* HOT under growth. Evolving the
/// constrained design for 24 epochs of compounding demand and falling
/// transport costs leaves its signatures flat — the load-concentration
/// (betweenness Gini) trajectory drifts a fraction of the controls',
/// and the maximum degree stays pinned near the line-card cap — while
/// the preferential BA/GLP controls deepen their hubs monotonically
/// under the *same* arrival schedule.
#[test]
fn claim_e20_hot_stays_hot_under_growth() {
    use hot_exp::scenarios::e20;
    let p = e20::Params::golden();
    let ctx = hot_exp::RunCtx {
        scale: hot_exp::Scale::Golden,
        seed: hot_exp::SEED,
        threads: hotgen::graph::parallel::default_threads(),
        snapshot_dir: None,
    };
    let rows = e20::temporal_rows(&p, &ctx);
    let row = |model: &str| {
        rows.iter()
            .find(|r| r.model == model)
            .unwrap_or_else(|| panic!("model {} missing", model))
    };
    let (hot, glp, ba) = (row("hot"), row("glp"), row("ba"));
    // Every evolution stays a single connected internet throughout.
    for r in &rows {
        assert_eq!(r.final_components, 1, "{} fragmented", r.model);
        assert!(
            r.trajectory.rows.len() as u64 == p.epochs + 1,
            "{} missed epochs",
            r.model
        );
    }
    // The HOT economics actually fired: ISP entry and trunk
    // reinforcement added backbone links along the way.
    assert!(hot.reopt_links > 0, "no re-optimization ever triggered");
    // Load concentration: HOT's Gini trajectory stays flat (drift well
    // under half), each control's climbs past it by more than 2x.
    let hot_drift = hot.trajectory.gini_drift();
    assert!(hot_drift < 0.45, "hot gini drifted {}", hot_drift);
    for ctl in [glp, ba] {
        let drift = ctl.trajectory.gini_drift();
        assert!(drift > 0.6, "{} gini drift only {}", ctl.model, drift);
        assert!(
            drift > 2.0 * hot_drift,
            "{} drift {} not >> hot {}",
            ctl.model,
            drift,
            hot_drift
        );
    }
    // Degree boundedness: the HOT maximum stays pinned near the access
    // cap (trunks and peering add a handful on top), so its growth
    // ratio stays single-digit; the controls' hubs compound past 10x.
    let hot_max = hot.trajectory.rows.last().expect("rows").max_degree;
    assert!(
        hot_max <= 2 * p.hot_degree_cap,
        "hot max degree {} blew past the cap {}",
        hot_max,
        p.hot_degree_cap
    );
    assert!(hot.trajectory.max_degree_ratio() < 8.0);
    for ctl in [glp, ba] {
        assert!(
            ctl.trajectory.max_degree_ratio() > 10.0,
            "{} hub ratio only {}",
            ctl.model,
            ctl.trajectory.max_degree_ratio()
        );
    }
    // And flatness is sustained, not a lucky endpoint: over the whole
    // second half of the run HOT's Gini moves within a narrow band.
    // (Absolute levels are not comparable across models — a HOT access
    // tree concentrates all transit on few core routers by design; the
    // *trajectory* is what separates the mechanisms.)
    let mid = (p.epochs / 2) as usize;
    let late: Vec<f64> = hot.trajectory.rows[mid..]
        .iter()
        .map(|r| r.load.gini)
        .collect();
    let band = late.iter().cloned().fold(f64::MIN, f64::max)
        - late.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        band < 0.05,
        "hot late-run gini wandered over a {} band: {:?}",
        band,
        late
    );
}
