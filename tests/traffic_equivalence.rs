//! Differential suite for the batched traffic engine: on a 5k-node GLP
//! graph, the batched tree-reuse engine must agree with per-flow naive
//! routing **exactly** (integer-valued demands make every sum exact in
//! f64, so reassociating the additions cannot change a bit), and its
//! link-load vectors must be byte-identical at 1 vs 8 worker threads —
//! the same contract `csr_equivalence.rs` pins for the analytics
//! kernels.
//!
//! Demands are restricted to source bands (every destination, a prefix
//! of sources): the engine skips sources that originate nothing, which
//! keeps the debug-build suite fast without shrinking the 5k-node
//! topology the paths actually traverse.

use hotgen::baselines::glp;
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::parallel::bfs_forest;
use hotgen::graph::NodeId;
use hotgen::sim::demand::{DemandConfig, DemandMatrix, DemandModel, OdDemand};
use hotgen::sim::routing::{route, IgpMetric};
use hotgen::sim::traffic::{link_loads, naive_link_load, RoutePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

mod common;
use common::Banded;

/// The shared 5k-node GLP fixture (generated once per test binary).
fn glp5k() -> &'static (hotgen::graph::Graph<(), ()>, CsrGraph) {
    static FIXTURE: OnceLock<(hotgen::graph::Graph<(), ()>, CsrGraph)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let g = glp::generate(
            &glp::GlpConfig {
                n: 5000,
                ..glp::GlpConfig::default()
            },
            &mut StdRng::seed_from_u64(20030617),
        );
        let csr = CsrGraph::from_graph(&g);
        (g, csr)
    })
}

/// Integer-valued OD demand: small integers varying per pair, so f64
/// sums are exact regardless of association order.
struct IntegerDemand {
    n: usize,
}

impl OdDemand for IntegerDemand {
    fn node_count(&self) -> usize {
        self.n
    }
    fn demand(&self, src: usize, dst: usize) -> f64 {
        if src == dst {
            0.0
        } else {
            ((src * 7 + dst * 13) % 5) as f64 // 0..=4, zeros included
        }
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The differential heart: batched subtree accumulation == per-flow path
/// walking over the tree cache == the legacy `route()` engine, bit for
/// bit, on integer demands from a band of sources.
#[test]
fn batched_matches_naive_per_flow_exactly() {
    let (g, csr) = glp5k();
    let sources: Vec<NodeId> = (0..300).map(NodeId).collect();
    let dem = IntegerDemand { n: 5000 };
    let banded = Banded {
        inner: IntegerDemand { n: 5000 },
        max_src: sources.len(),
    };
    let batched = link_loads(csr, &banded, RoutePolicy::TreePath, 4);

    // Naive 1: per-flow walks over the multi-source tree cache.
    let mut flows = Vec::new();
    for &s in &sources {
        for dst in 0..5000 {
            let amount = dem.demand(s.index(), dst);
            if amount > 0.0 {
                flows.push(hotgen::sim::routing::Demand {
                    src: s,
                    dst: NodeId(dst as u32),
                    amount,
                });
            }
        }
    }
    let forest = bfs_forest(csr, &sources, 4);
    let naive = naive_link_load(csr, &forest, &flows);
    assert_eq!(bits(&batched.link_load), bits(&naive.link_load));
    assert_eq!(batched.routed_flows, naive.routed_flows);
    assert_eq!(batched.unrouted_flows, naive.unrouted_flows);
    assert_eq!(
        batched.routed_traffic.to_bits(),
        naive.routed_traffic.to_bits()
    );
    assert_eq!(batched.traffic_hops, naive.traffic_hops);

    // Naive 2: the legacy per-flow router agrees too (same CSR, same
    // first-discovery trees).
    let legacy = route(g, &flows, IgpMetric::HopCount, |_, _| 1.0);
    assert_eq!(bits(&batched.link_load), bits(&legacy.link_load));
    assert!(legacy.unrouted.is_empty());
}

/// Thread-count identity on *non-integer* demand (gravity with jittered
/// masses), for both route policies: 1 worker vs 8 workers, link loads
/// byte-identical, over a ≥ 1M-flow band.
#[test]
fn one_vs_eight_threads_byte_identical_on_glp5k() {
    let (_, csr) = glp5k();
    let dem = Banded {
        inner: DemandMatrix::build(
            csr,
            None,
            &DemandConfig {
                model: DemandModel::Gravity {
                    distance_exponent: 1.0,
                },
                mass_jitter: 0.5,
                seed: 7,
                ..DemandConfig::default()
            },
        ),
        max_src: 1000,
    };
    for policy in [RoutePolicy::TreePath, RoutePolicy::Ecmp] {
        let reference = link_loads(csr, &dem, policy, 1);
        assert!(
            reference.routed_flows >= 1_000_000,
            "band routes {} flows",
            reference.routed_flows
        );
        let par = link_loads(csr, &dem, policy, 8);
        assert_eq!(
            bits(&reference.link_load),
            bits(&par.link_load),
            "{:?} diverged at 8 threads",
            policy
        );
        assert_eq!(reference.routed_flows, par.routed_flows);
        assert_eq!(reference.traffic_hops.to_bits(), par.traffic_hops.to_bits());
        // Conservation: every routed unit crosses exactly `hops` links
        // no matter how ECMP splits it.
        let total = reference.total_load();
        assert!(
            (total - reference.traffic_hops).abs() <= 1e-9 * reference.traffic_hops,
            "{:?} conservation: load {} vs traffic-hops {}",
            policy,
            total,
            reference.traffic_hops
        );
    }
}

/// TreePath and ECMP agree on all flow accounting (they differ only in
/// where the load lands), over a rank-biased band.
#[test]
fn ecmp_and_tree_agree_on_accounting() {
    let (_, csr) = glp5k();
    let dem = Banded {
        inner: DemandMatrix::build(
            csr,
            None,
            &DemandConfig {
                model: DemandModel::RankBiased { exponent: 1.0 },
                ..DemandConfig::default()
            },
        ),
        max_src: 500,
    };
    let tree = link_loads(csr, &dem, RoutePolicy::TreePath, 8);
    let ecmp = link_loads(csr, &dem, RoutePolicy::Ecmp, 8);
    assert_eq!(tree.routed_flows, ecmp.routed_flows);
    assert_eq!(tree.unrouted_flows, ecmp.unrouted_flows);
    // Same shortest-path lengths → identical traffic-hops.
    assert_eq!(tree.traffic_hops.to_bits(), ecmp.traffic_hops.to_bits());
    assert!(tree.max_load() > 0.0 && ecmp.max_load() > 0.0);
}
