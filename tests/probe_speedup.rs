//! The acceptance bar for the batched probe pipeline: a vantage-point
//! campaign on a seeded GLP graph must beat the per-vantage
//! `infer_map` reference by ≥ 2× — with the inferred map bit-identical.
//!
//! Like `traffic_speedup.rs` / `te_speedup.rs`, this is a *timing*
//! test and lives alone in its own test binary so the measurement does
//! not contend with the multi-thread equivalence suites. In debug
//! builds the size drops and only equivalence is asserted; the timing
//! gate arms in release on ≥ 4 cores (the release CI job).

use hotgen::baselines::glp;
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::parallel::default_threads;
use hotgen::sim::probe::{run_campaign, ProbeCampaign};
use hotgen::sim::traceroute::{infer_map, strided_vantages};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

#[test]
fn batched_campaign_speedup_glp() {
    let (n, k) = if cfg!(debug_assertions) {
        (2_000, 16)
    } else {
        (30_000, 64)
    };
    let glp_graph = glp::generate(
        &glp::GlpConfig {
            n,
            ..glp::GlpConfig::default()
        },
        &mut StdRng::seed_from_u64(20030617),
    );
    // Re-key the GLP topology with per-link latencies derived from the
    // edge index: tie-heavy small integers, so equal-cost choices must
    // agree between the engines too.
    let g: hotgen::graph::Graph<(), f64> = hotgen::graph::Graph::from_edges(
        n,
        glp_graph
            .edges()
            .map(|(e, a, b, _)| (a.index(), b.index(), ((e.index() % 5) + 1) as f64))
            .collect::<Vec<_>>(),
    );
    let threads = default_threads();
    let vantages = strided_vantages(&g, k);
    let csr = CsrGraph::from_graph(&g);
    let latency: Vec<f64> = g.edge_ids().map(|e| *g.edge_weight(e)).collect();

    let t0 = Instant::now();
    let reference = infer_map(&g, &vantages, None, |&w| w);
    let naive_time = t0.elapsed();

    let t1 = Instant::now();
    let fast = run_campaign(
        &csr,
        &ProbeCampaign {
            vantages: &vantages,
            destinations: None,
            link_latency: Some(&latency),
        },
        threads,
    );
    let batched_time = t1.elapsed();

    // Exact agreement, always.
    assert_eq!(fast.map.node_seen, reference.node_seen);
    assert_eq!(fast.map.edge_seen, reference.edge_seen);
    assert_eq!(
        fast.map.edge_coverage.to_bits(),
        reference.edge_coverage.to_bits()
    );
    assert_eq!(fast.stats.probes_sent, (vantages.len() * n) as u64);
    assert_eq!(fast.stats.probes_sent, fast.stats.probes_completed);

    let speedup = naive_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-9);
    println!(
        "glp{}: {} vantages, {} probes; naive {:.3}s, batched({} threads) {:.3}s, speedup {:.2}x",
        n,
        vantages.len(),
        fast.stats.probes_sent,
        naive_time.as_secs_f64(),
        threads,
        batched_time.as_secs_f64(),
        speedup
    );
    if !cfg!(debug_assertions) && threads >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >= 2x over the per-vantage reference on {} threads, measured {:.2}x",
            threads,
            speedup
        );
    }
}
