//! Cross-crate integration tests: full pipelines from geography through
//! design to metrics, exercised through the public facade API only.

use hotgen::core::buyatbulk::{exact, greedy, mmp, routing::build_report};
use hotgen::graph::traversal::is_connected;
use hotgen::graph::tree::is_tree;
use hotgen::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn geography(seed: u64) -> (Census, TrafficMatrix) {
    let census = Census::synthesize(
        &CensusConfig {
            n_cities: 20,
            ..CensusConfig::default()
        },
        &mut StdRng::seed_from_u64(seed),
    );
    let traffic = TrafficMatrix::gravity(&census, &GravityConfig::default());
    (census, traffic)
}

#[test]
fn census_to_isp_to_metrics() {
    let (census, traffic) = geography(1);
    let config = IspConfig {
        n_pops: 5,
        total_customers: 120,
        ..IspConfig::default()
    };
    let isp = generate_isp(&census, &traffic, &config, &mut StdRng::seed_from_u64(2));
    assert!(is_connected(&isp.graph));
    // Hierarchy levels all present.
    assert!(isp.count_role(RouterRole::Backbone) >= config.n_pops);
    assert!(isp.count_role(RouterRole::Distribution) > 0);
    assert!(isp.count_role(RouterRole::Customer) > 80);
    // The metric battery runs end-to-end on the result.
    let report = MetricReport::compute("isp", &isp.graph);
    assert_eq!(report.nodes, isp.graph.node_count());
    assert_eq!(report.components, 1);
    assert!(report.resilience >= 1.0);
    // ISP access plant is tree-dominated: distortion near 1.
    assert!(report.distortion < 1.4, "distortion {}", report.distortion);
}

#[test]
fn buyatbulk_full_stack_consistency() {
    // MMP -> local search -> build report, with invariant checks between
    // every pair of representations.
    let mut rng = StdRng::seed_from_u64(3);
    let cost = LinkCost::cables_only(CableCatalog::realistic_2003());
    let instance = Instance::random_uniform(60, 12.0, cost, &mut rng);
    let out = greedy::mmp_plus_improve(&instance, &mut rng, 1000);
    let solution = &out.solution;
    assert!(is_tree(&solution.to_graph(&instance)));
    // Flow conservation: sink inflow equals total demand.
    let flows = solution.uplink_flows(&instance);
    assert!((flows[0] - instance.total_demand()).abs() < 1e-6);
    // Build report totals agree with direct computation.
    let report = build_report(&instance, solution);
    assert!((report.total_cost - solution.total_cost(&instance)).abs() < 1e-6);
    let km_sum: f64 = report.cable_km.iter().sum();
    assert!(km_sum >= report.total_length - 1e-9); // instances >= 1 per link
                                                   // Every link's installed capacity covers its flow.
    for link in &report.links {
        assert!(link.utilization <= 1.0 + 1e-9);
        assert!(link.flow > 0.0);
    }
}

#[test]
fn heuristics_bounded_by_exact_on_tiny_instances() {
    let cost = LinkCost::cables_only(CableCatalog::realistic_2003());
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let instance = Instance::random_uniform(6, 25.0, cost.clone(), &mut rng);
        let (_, opt) = exact::solve(&instance);
        let mmp_cost = mmp::solve(&instance, &mut rng).total_cost(&instance);
        let ls = greedy::mmp_plus_improve(&instance, &mut rng, 500).final_cost;
        assert!(mmp_cost >= opt - 1e-9);
        assert!(ls >= opt - 1e-9);
        // Empirical constant factor stays modest (MMP's guarantee).
        assert!(
            mmp_cost / opt < 2.0,
            "seed {}: ratio {}",
            seed,
            mmp_cost / opt
        );
    }
}

#[test]
fn internet_assembly_end_to_end() {
    let (census, traffic) = geography(5);
    let config = InternetConfig {
        n_isps: 12,
        max_pops: 6,
        customers_per_pop: 8,
        ..InternetConfig::default()
    };
    let net = generate_internet(&census, &traffic, &config, &mut StdRng::seed_from_u64(6));
    // AS graph connected; router graph connected and degree-capped.
    assert!(is_connected(&net.as_graph()));
    let router = net.combined_router_graph();
    assert!(is_connected(&router));
    let cap = net.router_degree_cap;
    assert!(router
        .degree_sequence()
        .into_iter()
        .all(|d| d as usize <= cap));
    // Hub ASes reach a large fraction of all ASes (business links are
    // unbounded); no router reaches more than a sliver of all routers
    // (ports are bounded). Compare normalized max degrees.
    let as_degrees = net.as_degrees();
    let as_reach = *as_degrees.iter().max().unwrap() as f64 / as_degrees.len() as f64;
    let router_degrees = router.degree_sequence();
    let router_reach = *router_degrees.iter().max().unwrap() as f64 / router_degrees.len() as f64;
    assert!(
        as_reach > 10.0 * router_reach,
        "AS reach {} vs router reach {}",
        as_reach,
        router_reach
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let (census, traffic) = geography(7);
        let config = IspConfig {
            n_pops: 4,
            total_customers: 80,
            ..IspConfig::default()
        };
        let isp = generate_isp(&census, &traffic, &config, &mut StdRng::seed_from_u64(8));
        let report = MetricReport::compute("det", &isp.graph);
        (isp.graph.node_count(), isp.graph.edge_count(), report.row())
    };
    assert_eq!(run(), run());
}

#[test]
fn formulations_nest() {
    // Profit-based ISP serves a subset of the cost-based customer set,
    // never more.
    let (census, traffic) = geography(9);
    let base = IspConfig {
        n_pops: 4,
        total_customers: 100,
        ..IspConfig::default()
    };
    let cost_isp = generate_isp(&census, &traffic, &base, &mut StdRng::seed_from_u64(10));
    let profit_config = IspConfig {
        formulation: Formulation::ProfitBased {
            revenue: RevenueModel::FlatPerCustomer { revenue: 120.0 },
        },
        ..base
    };
    let profit_isp = generate_isp(
        &census,
        &traffic,
        &profit_config,
        &mut StdRng::seed_from_u64(10),
    );
    assert!(
        profit_isp.count_role(RouterRole::Customer) <= cost_isp.count_role(RouterRole::Customer)
    );
    assert_eq!(
        profit_isp.count_role(RouterRole::Customer) + profit_isp.rejected_customers,
        cost_isp.count_role(RouterRole::Customer)
    );
}
