//! Integration tests for the `hot-bgp` policy-routing subsystem: the
//! batched propagation must agree with the small reference
//! implementation in `hot-sim::bgp` on generator-built internets, never
//! beat the unrestricted shortest path, stay bit-identical across
//! thread counts, and derive AS classes that match the economics the
//! generator wired.

use hotgen::bgp::{policy_summary, policy_summary_all, AsClass, AsTopology, UNREACHED};
use hotgen::core::isp::generator::IspConfig;
use hotgen::core::peering::{generate_internet, Internet, InternetConfig};
use hotgen::sim::bgp::AsNetwork;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small generated internet: `n_isps` designed ISPs peered with
/// `tier1` at the top and `transit` upstreams each.
fn internet(cities: usize, n_isps: usize, tier1: usize, transit: usize, seed: u64) -> Internet {
    let (census, traffic) = hot_exp::standard_geography(cities, seed);
    let config = InternetConfig {
        n_isps,
        max_pops: 4,
        tier1_count: tier1,
        transit_per_isp: transit,
        customers_per_pop: 2,
        isp_template: IspConfig::default(),
        ..InternetConfig::default()
    };
    generate_internet(&census, &traffic, &config, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On random generated internets the flat batched kernel and the
    /// reference `hot-sim` BFS agree exactly — valley-free distances,
    /// unrestricted distances, and the vf >= sp property per pair.
    #[test]
    fn propagation_matches_reference_and_never_beats_shortest(
        cities in 4usize..9,
        n_isps in 4usize..14,
        tier1 in 1usize..4,
        transit in 1usize..4,
        seed in 0u64..100_000,
    ) {
        let tier1 = tier1.min(n_isps - 1);
        let net = internet(cities, n_isps, tier1, transit, seed);
        let reference = AsNetwork::from_internet(&net);
        let topo = AsTopology::from_internet(&net);
        prop_assert_eq!(topo.len(), reference.len());
        for src in 0..topo.len() {
            let table = topo.propagate(src);
            let sp = topo.shortest(src);
            let ref_vf = reference.valley_free_distances(src);
            let ref_sp = reference.shortest_distances(src);
            for d in 0..topo.len() {
                // Differential: flat kernel == reference BFS, both faces.
                let vf = (table.dist[d] != UNREACHED).then_some(table.dist[d]);
                prop_assert_eq!(vf, ref_vf[d], "vf src {} dst {}", src, d);
                let sp_d = (sp[d] != UNREACHED).then_some(sp[d]);
                prop_assert_eq!(sp_d, ref_sp[d], "sp src {} dst {}", src, d);
                // Property: policy can only lengthen or deny a route.
                if let Some(vf) = vf {
                    let sp_d = sp_d.expect("vf-reachable implies BFS-reachable");
                    prop_assert!(vf >= sp_d, "src {} dst {}: vf {} < sp {}", src, d, vf, sp_d);
                }
            }
        }
    }

    /// The batched summary is a pure function of `(topology, sources)`:
    /// byte-identical at 1 vs 8 worker threads on random internets.
    #[test]
    fn batched_summary_identical_at_1_vs_8_threads(
        n_isps in 4usize..14,
        transit in 1usize..4,
        seed in 0u64..100_000,
    ) {
        let net = internet(6, n_isps, 2, transit, seed);
        let topo = AsTopology::from_internet(&net);
        let serial = policy_summary_all(&topo, 1);
        prop_assert_eq!(&policy_summary_all(&topo, 8), &serial);
        // Subsets (including an out-of-range source) too.
        let band: Vec<u32> = (0..topo.len() as u32).step_by(2).chain([9999]).collect();
        let one = policy_summary(&topo, &band, 1);
        prop_assert_eq!(&policy_summary(&topo, &band, 8), &one);
    }
}

/// Class labels recover the economics the generator wired: exactly
/// `tier1_count` provider-less ASes at the top, transit sellers below
/// them, and every class-count total equals the AS count.
#[test]
fn class_labels_match_generator_economics() {
    let net = internet(10, 12, 3, 2, 20030617);
    let topo = AsTopology::from_internet(&net);
    let counts = topo.class_counts();
    assert_eq!(counts[AsClass::Tier1.index()], 3);
    assert_eq!(counts.iter().sum::<usize>(), topo.len());
    for a in 0..topo.len() {
        match topo.class(a) {
            AsClass::Tier1 => assert!(topo.providers(a).is_empty()),
            AsClass::Tier2 => {
                assert!(!topo.providers(a).is_empty());
                assert!(!topo.customers(a).is_empty());
            }
            AsClass::Cloud | AsClass::Stub => {
                assert!(!topo.providers(a).is_empty());
                assert!(topo.customers(a).is_empty());
            }
        }
    }
    // The relationship multigraph collapses to the same simple adjacency
    // the reference builder produces.
    let reference = AsNetwork::from_internet(&net);
    for a in 0..topo.len() {
        let prov: Vec<usize> = topo.providers(a).iter().map(|&x| x as usize).collect();
        let mut want = reference.providers[a].clone();
        want.sort_unstable();
        assert_eq!(prov, want, "providers of {}", a);
    }
}

/// Hardening regression (PR 5 convention): out-of-range sources reach
/// nothing through every public entry point instead of panicking.
#[test]
fn out_of_range_sources_reach_nothing() {
    let net = internet(6, 8, 2, 2, 7);
    let topo = AsTopology::from_internet(&net);
    let table = topo.propagate(topo.len() + 3);
    assert!(table.dist.iter().all(|&d| d == UNREACHED));
    assert!(topo
        .shortest(usize::MAX >> 8)
        .iter()
        .all(|&d| d == UNREACHED));
    let s = policy_summary(&topo, &[topo.len() as u32 + 7], 4);
    assert_eq!(s.policy_reachable, 0);
    assert_eq!(s.pairs, topo.len() as u64);
}
