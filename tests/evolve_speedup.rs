//! The acceptance bar for the epoch engine: per-epoch maintenance via
//! the incremental path (dirty-region CSR commit + live union-find
//! components + rolling degree stats) must beat the from-scratch
//! recompute (full `CsrGraph::from_graph` + BFS component count + cold
//! degree rebuild) by ≥ 2× — with the committed views bit-identical at
//! every epoch.
//!
//! Like the other `*_speedup.rs` gates, this is a *timing* test and
//! lives alone in its own test binary. Debug builds drop the sizes and
//! assert equivalence only; the timing gate arms in release on ≥ 4
//! cores (the release CI job).

use hotgen::baselines::ba;
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::epoch::EpochGraph;
use hotgen::graph::graph::NodeId;
use hotgen::graph::parallel::default_threads;
use hotgen::metrics::rolling::RollingDegrees;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One epoch's mutation script: leaf arrivals (node + uplink to an
/// existing router) and reinforcement edges between existing routers.
struct EpochScript {
    arrivals: Vec<u32>,
    reinforcements: Vec<(u32, u32)>,
}

fn scripts(base_n: usize, epochs: usize, rng: &mut StdRng) -> Vec<EpochScript> {
    let mut n = base_n;
    (0..epochs)
        .map(|_| {
            let arrivals: Vec<u32> = (0..60)
                .map(|_| {
                    let t = rng.random_range(0..n) as u32;
                    n += 1;
                    t
                })
                .collect();
            let reinforcements: Vec<(u32, u32)> = (0..150)
                .map(|_| {
                    let a = rng.random_range(0..base_n) as u32;
                    let b = rng.random_range(0..base_n) as u32;
                    (a, b)
                })
                .filter(|&(a, b)| a != b)
                .collect();
            EpochScript {
                arrivals,
                reinforcements,
            }
        })
        .collect()
}

fn apply(g: &mut EpochGraph<(), ()>, s: &EpochScript) {
    for &t in &s.arrivals {
        let v = g.add_node(());
        g.add_edge(NodeId(t), v, ());
    }
    for &(a, b) in &s.reinforcements {
        g.add_edge(NodeId(a), NodeId(b), ());
    }
}

/// Component count the from-scratch way: BFS sweep over the CSR.
fn bfs_components(csr: &CsrGraph) -> usize {
    let n = csr.node_count();
    let mut seen = vec![false; n];
    let mut stack = Vec::new();
    let mut comps = 0;
    for s in 0..n {
        if seen[s] {
            continue;
        }
        comps += 1;
        seen[s] = true;
        stack.push(s as u32);
        while let Some(v) = stack.pop() {
            for u in csr.neighbors(NodeId(v)) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    stack.push(u.0);
                }
            }
        }
    }
    comps
}

#[test]
fn incremental_epoch_maintenance_speedup() {
    let (base_n, epochs) = if cfg!(debug_assertions) {
        (8_000, 6)
    } else {
        (120_000, 30)
    };
    let mut rng = StdRng::seed_from_u64(20030617);
    let base = ba::generate(base_n, 2, &mut rng);
    let script = scripts(base_n, epochs, &mut rng);
    let mut inc = EpochGraph::new(base.clone());
    let mut full = EpochGraph::new(base);
    let mut inc_degs = RollingDegrees::from_degrees(&inc.csr().degree_sequence());
    let mut inc_time = Duration::ZERO;
    let mut full_time = Duration::ZERO;
    let mut checksum = (0usize, 0u64);
    for s in &script {
        apply(&mut inc, s);
        apply(&mut full, s);
        let pending = inc.pending_edges();

        // Incremental maintenance: dirty-region commit, O(1) component
        // count off the live union-find, delta degree update.
        let t0 = Instant::now();
        inc.commit();
        let comps_inc = inc.components();
        inc_degs.grow_to(inc.node_count());
        for e in pending {
            let (a, b) = inc
                .graph()
                .edge_endpoints(hotgen::graph::graph::EdgeId(e as u32));
            inc_degs.add_edge(a.index(), b.index());
        }
        let stats_inc = (inc_degs.max_degree(), inc_degs.mean_degree());
        inc_time += t0.elapsed();

        // From-scratch maintenance: full rebuild, BFS components, cold
        // degree stats.
        let t1 = Instant::now();
        full.commit_full();
        let comps_full = bfs_components(full.csr());
        let full_degs = RollingDegrees::from_degrees(&full.csr().degree_sequence());
        let stats_full = (full_degs.max_degree(), full_degs.mean_degree());
        full_time += t1.elapsed();

        // Exact agreement, always.
        assert_eq!(inc.csr(), full.csr());
        assert_eq!(comps_inc, comps_full);
        assert_eq!(stats_inc.0, stats_full.0);
        assert_eq!(stats_inc.1.to_bits(), stats_full.1.to_bits());
        checksum = (comps_inc, checksum.1 ^ stats_inc.1.to_bits());
    }
    assert_eq!(
        checksum.0, 1,
        "BA base plus attached arrivals stays connected"
    );

    let threads = default_threads();
    let speedup = full_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-9);
    println!(
        "epoch maintenance over {} epochs on {} base nodes: incremental {:.3}s, \
         from-scratch {:.3}s, speedup {:.2}x",
        epochs,
        base_n,
        inc_time.as_secs_f64(),
        full_time.as_secs_f64(),
        speedup
    );
    if !cfg!(debug_assertions) && threads >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >= 2x incremental vs from-scratch epoch maintenance, measured {:.2}x",
            speedup
        );
    }
}
