//! Helpers shared by the traffic test binaries.

use hotgen::sim::demand::OdDemand;

/// Restricts any demand to sources below `max_src` (all destinations):
/// the source-band workload the traffic suites route, small enough for
/// debug builds while the paths still traverse the full topology.
pub struct Banded<D> {
    pub inner: D,
    pub max_src: usize,
}

impl<D: OdDemand> OdDemand for Banded<D> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
    fn demand(&self, src: usize, dst: usize) -> f64 {
        if src < self.max_src {
            self.inner.demand(src, dst)
        } else {
            0.0
        }
    }
}
