//! The acceptance bar for the traffic engine: on a seeded 5k-node GLP
//! graph, the batched tree-reuse engine beats the naive per-flow
//! baseline (tree cache + per-flow path walks) by ≥ 4× — with link
//! loads bit-identical at 1 vs 8 worker threads.
//!
//! Like `csr_speedup.rs`, this is a *timing* test and lives alone in
//! its own test binary: cargo runs test binaries sequentially and a
//! single `#[test]` gets the whole process, so the measurement does not
//! contend with the 8-thread equivalence suites. In debug builds the
//! size drops and only equivalence is asserted; the timing gate arms in
//! release on ≥ 4 cores (the release CI job).

use hotgen::baselines::glp;
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::parallel::{bfs_forest, default_threads};
use hotgen::graph::NodeId;
use hotgen::sim::demand::{DemandConfig, DemandMatrix, DemandModel};
use hotgen::sim::traffic::{link_loads, naive_link_load, RoutePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

mod common;
use common::Banded;

#[test]
fn batched_engine_speedup_glp5k() {
    let (n, n_sources) = if cfg!(debug_assertions) {
        (800, 200)
    } else {
        (5_000, 1_200)
    };
    let g = glp::generate(
        &glp::GlpConfig {
            n,
            ..glp::GlpConfig::default()
        },
        &mut StdRng::seed_from_u64(20030617),
    );
    let csr = CsrGraph::from_graph(&g);
    let threads = default_threads();
    let dem = DemandMatrix::build(
        &csr,
        None,
        &DemandConfig {
            model: DemandModel::Gravity {
                distance_exponent: 1.0,
            },
            ..DemandConfig::default()
        },
    );
    // Both engines route the same flow set: every (src < n_sources, dst)
    // ordered pair with positive demand.
    let sources: Vec<NodeId> = (0..n_sources as u32).map(NodeId).collect();
    let flows = dem.flows_from(&sources);
    let banded = Banded {
        inner: dem,
        max_src: n_sources,
    };

    // Naive per-flow baseline: build the tree cache serially, then walk
    // every flow's path edge by edge.
    let t0 = Instant::now();
    let forest = bfs_forest(&csr, &sources, 1);
    let naive = naive_link_load(&csr, &forest, &flows);
    let naive_time = t0.elapsed();

    // Batched engine at full parallelism.
    let t1 = Instant::now();
    let batched = link_loads(&csr, &banded, RoutePolicy::TreePath, threads);
    let batched_time = t1.elapsed();

    // Agreement (to float tolerance: gravity amounts are not integers,
    // so the two summation orders may differ in the last bits).
    assert_eq!(naive.routed_flows, batched.routed_flows);
    assert_eq!(naive.unrouted_flows, batched.unrouted_flows);
    for (a, b) in naive.link_load.iter().zip(&batched.link_load) {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "load mismatch: naive {} vs batched {}",
            a,
            b
        );
    }

    // Bit-identical at 1 vs 8 worker threads, always.
    let serial = link_loads(&csr, &banded, RoutePolicy::TreePath, 1);
    let eight = link_loads(&csr, &banded, RoutePolicy::TreePath, 8);
    let serial_bits: Vec<u64> = serial.link_load.iter().map(|x| x.to_bits()).collect();
    let eight_bits: Vec<u64> = eight.link_load.iter().map(|x| x.to_bits()).collect();
    assert_eq!(serial_bits, eight_bits, "1 vs 8 threads diverged");

    let speedup = naive_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-9);
    println!(
        "glp{}: {} flows; naive {:.3}s, batched({} threads) {:.3}s, speedup {:.2}x",
        n,
        flows.len(),
        naive_time.as_secs_f64(),
        threads,
        batched_time.as_secs_f64(),
        speedup
    );
    if !cfg!(debug_assertions) && threads >= 4 {
        assert!(
            speedup >= 4.0,
            "expected >= 4x over the per-flow baseline on {} threads, measured {:.2}x",
            threads,
            speedup
        );
    }
}
