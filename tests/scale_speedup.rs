//! The acceptance bar for the scale kernels: on a seeded power-law
//! graph, (a) the direction-optimizing scratch BFS beats the classic
//! allocating queue sweep by ≥ 2×, with bit-identical distances; and
//! (b) pivot-sampled betweenness beats exact Brandes by ≥ 4× at 1/16
//! of the pivots, with the concentration statistics it feeds (Gini,
//! top-decile share) tracking the exact values.
//!
//! Like `csr_speedup.rs` and `traffic_speedup.rs`, this is a *timing*
//! test and lives alone in its own test binary: cargo runs test
//! binaries sequentially and a single `#[test]` gets the whole process,
//! so the measurement does not contend with the 8-thread equivalence
//! suites. In debug builds the sizes drop and only equivalence is
//! asserted; the timing gates arm in release (the BFS gate on any core
//! count — the kernel is single-threaded — and the betweenness gate on
//! ≥ 4 cores like the other suites).

use hotgen::baselines::glp;
use hotgen::graph::csr::{BfsScratch, CsrGraph};
use hotgen::graph::parallel::{default_threads, par_betweenness, par_betweenness_sampled};
use hotgen::graph::NodeId;
use hotgen::metrics::hierarchy::{betweenness_pivots, gini};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

#[test]
fn scale_kernels_speedup_glp() {
    let (n, n_sources, bw_n, pivots_k) = if cfg!(debug_assertions) {
        (5_000, 64, 600, 64)
    } else {
        (200_000, 256, 6_000, 384)
    };
    let threads = default_threads();
    let csr = CsrGraph::from_graph(&glp::generate(
        &glp::GlpConfig {
            n,
            ..glp::GlpConfig::default()
        },
        &mut StdRng::seed_from_u64(20030617),
    ));
    // Knuth-stride sample of sources, spread across the id space.
    let sources: Vec<NodeId> = (0..n_sources as u64)
        .map(|i| NodeId(((i * 2_654_435_761) % n as u64) as u32))
        .collect();

    // Classic allocating top-down BFS.
    let t0 = Instant::now();
    let classic: Vec<Vec<u32>> = sources.iter().map(|&s| csr.bfs_distances(s)).collect();
    let classic_time = t0.elapsed();

    // Direction-optimizing BFS into reusable scratch.
    let mut scratch = BfsScratch::sized(csr.node_count());
    let t1 = Instant::now();
    let mut dirop_ok = true;
    for (i, &s) in sources.iter().enumerate() {
        csr.bfs_distances_into(s, &mut scratch);
        dirop_ok &= scratch.dist() == classic[i].as_slice();
    }
    let dirop_time = t1.elapsed();
    assert!(dirop_ok, "direction-optimizing BFS diverged from classic");

    let bfs_speedup = classic_time.as_secs_f64() / dirop_time.as_secs_f64().max(1e-9);
    println!(
        "glp{}: {} sources; classic {:.3}s, dirop {:.3}s, speedup {:.2}x",
        n,
        sources.len(),
        classic_time.as_secs_f64(),
        dirop_time.as_secs_f64(),
        bfs_speedup
    );
    if !cfg!(debug_assertions) {
        assert!(
            bfs_speedup >= 2.0,
            "expected >= 2x over the classic BFS, measured {:.2}x",
            bfs_speedup
        );
    }

    // Sampled betweenness on a smaller graph (exact Brandes is the
    // baseline and is O(n·m)).
    let bw_csr = CsrGraph::from_graph(&glp::generate(
        &glp::GlpConfig {
            n: bw_n,
            ..glp::GlpConfig::default()
        },
        &mut StdRng::seed_from_u64(20030618),
    ));
    let t2 = Instant::now();
    let exact = par_betweenness(&bw_csr, threads);
    let exact_time = t2.elapsed();
    let pivots = betweenness_pivots(bw_n, pivots_k, 7);
    let t3 = Instant::now();
    let sampled = par_betweenness_sampled(&bw_csr, &pivots, threads);
    let sampled_time = t3.elapsed();

    let gini_err = (gini(&sampled) - gini(&exact)).abs();
    assert!(gini_err < 0.05, "sampled gini off by {:.4}", gini_err);
    let bw_speedup = exact_time.as_secs_f64() / sampled_time.as_secs_f64().max(1e-9);
    println!(
        "glp{}: exact {:.3}s, sampled({} pivots) {:.3}s, speedup {:.2}x, gini err {:.4}",
        bw_n,
        exact_time.as_secs_f64(),
        pivots.len(),
        sampled_time.as_secs_f64(),
        bw_speedup,
        gini_err
    );
    if !cfg!(debug_assertions) && threads >= 4 {
        assert!(
            bw_speedup >= 4.0,
            "expected >= 4x over exact Brandes at {}/{} pivots, measured {:.2}x",
            pivots.len(),
            bw_n,
            bw_speedup
        );
    }
}
