//! Differential suite for the temporal engine: the incremental paths
//! must be *bit-identical* to their from-scratch references at every
//! epoch — the incremental CSR commit vs [`CsrGraph::from_graph`], the
//! rolling degree tracker vs a cold rebuild of the final sequence, the
//! delta-aware Brandes–Pich estimate vs a cold pivot draw over the same
//! stream — and at every thread count (the 1-vs-8 sweep below). This is
//! the contract that lets E20 report per-epoch analytics off deltas
//! without ever recomputing from scratch.

use hotgen::econ::trend::TechTrend;
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::graph::EdgeId;
use hotgen::graph::parallel::par_betweenness_sampled;
use hotgen::metrics::rolling::{DeltaBetweenness, RollingDegrees};
use hotgen::sim::evolve::{
    DegreeGrowth, Evolution, EvolveConfig, GrowthModel, HotGrowth, HotGrowthConfig,
};

const BW_SEED: u64 = 0xE20_B7EE;
const STRIDE: u64 = 3;

fn schedule(epochs: u64) -> EvolveConfig {
    EvolveConfig {
        epochs,
        arrivals_per_epoch: 25,
        trend: TechTrend::dotcom(),
        reopt_interval: 3,
        seed: 20030617,
    }
}

/// Drives two identically seeded evolutions — one committing
/// incrementally, one rebuilding from scratch — and checks every
/// view and every rolling metric for bit-identity at every epoch.
fn assert_equivalence<M: GrowthModel>(mk: impl Fn() -> M, epochs: u64) {
    let cfg = schedule(epochs);
    let mut inc = Evolution::new(mk(), cfg.clone());
    let mut full = Evolution::new(mk(), cfg);
    // Rolling trackers ride the incremental run only.
    let mut degs = RollingDegrees::from_degrees(&inc.graph().csr().degree_sequence());
    let mut bw = DeltaBetweenness::new(BW_SEED, STRIDE);
    bw.update(inc.graph().csr(), 1);
    for step in 0..epochs {
        let a = inc.step();
        let b = full.step_reference();
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.new_nodes, b.new_nodes, "epoch {}", step);
        assert_eq!(a.new_edges, b.new_edges, "epoch {}", step);
        assert_eq!(a.reopt_links, b.reopt_links, "epoch {}", step);
        // The committed views: incremental vs from-scratch vs a cold
        // rebuild of the live graph. CsrGraph is PartialEq over its
        // raw arrays, so equality here is bit-identity.
        assert_eq!(inc.graph().csr(), full.graph().csr(), "epoch {}", step);
        assert_eq!(
            inc.graph().csr(),
            &CsrGraph::from_graph(inc.graph().graph()),
            "epoch {}",
            step
        );
        // Rolling degrees, updated from the delta alone, vs a cold
        // tracker built off the reference run's committed view.
        degs.grow_to(inc.graph().node_count());
        for e in a.new_edges.clone() {
            let (x, y) = inc.graph().graph().edge_endpoints(EdgeId(e as u32));
            degs.add_edge(x.index(), y.index());
        }
        let scratch = RollingDegrees::from_degrees(&full.graph().csr().degree_sequence());
        assert_eq!(degs.degrees(), scratch.degrees(), "epoch {}", step);
        assert_eq!(degs.hist(), scratch.hist(), "epoch {}", step);
        assert_eq!(degs.edge_count(), scratch.edge_count());
        assert_eq!(degs.max_degree(), scratch.max_degree());
        assert_eq!(
            degs.mean_degree().to_bits(),
            scratch.mean_degree().to_bits()
        );
        for k in [1, 2, 4, 8, 32] {
            assert_eq!(degs.ccdf_at(k).to_bits(), scratch.ccdf_at(k).to_bits());
        }
        // Delta-aware betweenness: the streamed tracker at 1 thread vs
        // a cold pivot draw over the reference view at 8 threads.
        let n = inc.graph().node_count();
        let streamed = bw.update(inc.graph().csr(), 1).to_vec();
        let cold_pivots = DeltaBetweenness::pivots_for(BW_SEED, STRIDE, n);
        assert_eq!(bw.pivot_count(), cold_pivots.len(), "stream = cold draw");
        let cold = par_betweenness_sampled(full.graph().csr(), &cold_pivots, 8);
        assert_eq!(streamed.len(), cold.len());
        for (i, (x, y)) in streamed.iter().zip(&cold).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "betweenness diverges at node {} epoch {}",
                i,
                step
            );
        }
    }
}

#[test]
fn hot_evolution_incremental_is_bit_exact() {
    assert_equivalence(
        || {
            HotGrowth::new(HotGrowthConfig {
                cities: 6,
                degree_cap: 8,
                ..HotGrowthConfig::default()
            })
        },
        10,
    );
}

#[test]
fn ba_control_incremental_is_bit_exact() {
    assert_equivalence(|| DegreeGrowth::ba(2), 8);
}

#[test]
fn glp_control_incremental_is_bit_exact() {
    assert_equivalence(|| DegreeGrowth::glp(2), 8);
}

/// The acceptance gate's other half: the full E20 golden report is
/// byte-identical at 1 and 8 threads (the engine is serial; the
/// analytics run on the fixed-chunk scheduler).
#[test]
fn e20_report_is_byte_identical_across_thread_counts() {
    use hot_exp::registry::{RunCtx, Scale};
    use hot_exp::scenarios::e20;
    let run = |threads| {
        let ctx = RunCtx {
            scale: Scale::Golden,
            seed: hot_exp::SEED,
            threads,
            snapshot_dir: None,
        };
        e20::run(&e20::Params::golden(), ctx).to_json().pretty()
    };
    let one = run(1);
    let eight = run(8);
    assert_eq!(one, eight, "E20 must not depend on thread count");
    assert!(
        one.contains("\"epochs\": 24"),
        "golden preset runs 24 epochs"
    );
}
