//! Property tests (vendored proptest) for generator invariants.
//!
//! The scenario engine leans on structural guarantees the generators
//! are supposed to keep across *all* parameters and seeds, not just the
//! golden ones: FKP grows spanning trees, and the degree-based /
//! structural baselines emit simple graphs (no self-loops, no parallel
//! edges). These lock those invariants down.

use hotgen::baselines::{ba, glp, waxman};
use hotgen::core::fkp::{self, FkpConfig};
use hotgen::graph::traversal::is_connected;
use hotgen::graph::tree::is_tree;
use hotgen::graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(self_loops, duplicate_edges)` of a graph.
fn simplicity<N, E>(g: &Graph<N, E>) -> (usize, usize) {
    let mut seen = std::collections::HashSet::new();
    let mut self_loops = 0;
    let mut duplicates = 0;
    for (_, a, b, _) in g.edges() {
        if a == b {
            self_loops += 1;
        }
        let key = (a.min(b), a.max(b));
        if !seen.insert(key) {
            duplicates += 1;
        }
    }
    (self_loops, duplicates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn fkp_grows_connected_spanning_trees(
        n in 2usize..120,
        alpha in 0.1f64..50.0,
        seed in 0u64..1_000_000,
    ) {
        let topo = fkp::grow(
            &FkpConfig { n, alpha, ..FkpConfig::default() },
            &mut StdRng::seed_from_u64(seed),
        );
        let g = topo.to_graph();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n - 1, "a tree has n-1 edges");
        prop_assert!(is_tree(&g), "n = {}, alpha = {}, seed = {}", n, alpha, seed);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn ba_outputs_are_simple_graphs(
        n in 5usize..150,
        m in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let g = ba::generate(n, m, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), n);
        let (self_loops, duplicates) = simplicity(&g);
        prop_assert_eq!(self_loops, 0, "n = {}, m = {}, seed = {}", n, m, seed);
        prop_assert_eq!(duplicates, 0, "n = {}, m = {}, seed = {}", n, m, seed);
    }

    #[test]
    fn glp_outputs_are_simple_graphs(
        n in 10usize..150,
        p in 0.05f64..0.95,
        beta in -1.0f64..0.9,
        seed in 0u64..1_000_000,
    ) {
        let g = glp::generate(
            &glp::GlpConfig { n, m: 2, p, beta },
            &mut StdRng::seed_from_u64(seed),
        );
        let (self_loops, duplicates) = simplicity(&g);
        prop_assert_eq!(self_loops, 0, "n = {}, p = {}, beta = {}, seed = {}", n, p, beta, seed);
        prop_assert_eq!(duplicates, 0, "n = {}, p = {}, beta = {}, seed = {}", n, p, beta, seed);
    }

    #[test]
    fn waxman_outputs_are_simple_graphs(
        n in 5usize..150,
        alpha in 0.05f64..1.0,
        beta in 0.05f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let g = waxman::generate(
            &waxman::WaxmanConfig { n, alpha, beta, ..waxman::WaxmanConfig::default() },
            &mut StdRng::seed_from_u64(seed),
        );
        prop_assert_eq!(g.node_count(), n);
        let (self_loops, duplicates) = simplicity(&g);
        prop_assert_eq!(self_loops, 0, "n = {}, seed = {}", n, seed);
        prop_assert_eq!(duplicates, 0, "n = {}, seed = {}", n, seed);
    }
}
