//! Property tests (vendored proptest) for generator invariants.
//!
//! The scenario engine leans on structural guarantees the generators
//! are supposed to keep across *all* parameters and seeds, not just the
//! golden ones: FKP grows spanning trees, the degree-based / structural
//! baselines emit simple graphs (no self-loops, no parallel edges), and
//! the demand-matrix generators behind the traffic engine conserve
//! traffic, stay symmetric with a zero diagonal, and regenerate
//! byte-identically from a fixed seed. These lock those invariants down.

use hotgen::baselines::{ba, glp, waxman};
use hotgen::core::fkp::{self, FkpConfig};
use hotgen::graph::csr::CsrGraph;
use hotgen::graph::traversal::is_connected;
use hotgen::graph::tree::is_tree;
use hotgen::graph::{Graph, NodeId};
use hotgen::sim::demand::{DemandConfig, DemandMatrix, DemandModel, OdDemand};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(self_loops, duplicate_edges)` of a graph.
fn simplicity<N, E>(g: &Graph<N, E>) -> (usize, usize) {
    let mut seen = std::collections::HashSet::new();
    let mut self_loops = 0;
    let mut duplicates = 0;
    for (_, a, b, _) in g.edges() {
        if a == b {
            self_loops += 1;
        }
        let key = (a.min(b), a.max(b));
        if !seen.insert(key) {
            duplicates += 1;
        }
    }
    (self_loops, duplicates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn fkp_grows_connected_spanning_trees(
        n in 2usize..120,
        alpha in 0.1f64..50.0,
        seed in 0u64..1_000_000,
    ) {
        let topo = fkp::grow(
            &FkpConfig { n, alpha, ..FkpConfig::default() },
            &mut StdRng::seed_from_u64(seed),
        );
        let g = topo.to_graph();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n - 1, "a tree has n-1 edges");
        prop_assert!(is_tree(&g), "n = {}, alpha = {}, seed = {}", n, alpha, seed);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn ba_outputs_are_simple_graphs(
        n in 5usize..150,
        m in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let g = ba::generate(n, m, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), n);
        let (self_loops, duplicates) = simplicity(&g);
        prop_assert_eq!(self_loops, 0, "n = {}, m = {}, seed = {}", n, m, seed);
        prop_assert_eq!(duplicates, 0, "n = {}, m = {}, seed = {}", n, m, seed);
    }

    #[test]
    fn glp_outputs_are_simple_graphs(
        n in 10usize..150,
        p in 0.05f64..0.95,
        beta in -1.0f64..0.9,
        seed in 0u64..1_000_000,
    ) {
        let g = glp::generate(
            &glp::GlpConfig { n, m: 2, p, beta },
            &mut StdRng::seed_from_u64(seed),
        );
        let (self_loops, duplicates) = simplicity(&g);
        prop_assert_eq!(self_loops, 0, "n = {}, p = {}, beta = {}, seed = {}", n, p, beta, seed);
        prop_assert_eq!(duplicates, 0, "n = {}, p = {}, beta = {}, seed = {}", n, p, beta, seed);
    }

    #[test]
    fn waxman_outputs_are_simple_graphs(
        n in 5usize..150,
        alpha in 0.05f64..1.0,
        beta in 0.05f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let g = waxman::generate(
            &waxman::WaxmanConfig { n, alpha, beta, ..waxman::WaxmanConfig::default() },
            &mut StdRng::seed_from_u64(seed),
        );
        prop_assert_eq!(g.node_count(), n);
        let (self_loops, duplicates) = simplicity(&g);
        prop_assert_eq!(self_loops, 0, "n = {}, seed = {}", n, seed);
        prop_assert_eq!(duplicates, 0, "n = {}, seed = {}", n, seed);
    }
}

/// A small random multigraph for the demand-matrix properties.
fn demand_fixture(n: usize, pairs: &[(usize, usize)]) -> CsrGraph {
    let mut g: Graph<(), ()> = Graph::new();
    for _ in 0..n {
        g.add_node(());
    }
    for &(a, b) in pairs {
        let (a, b) = (a % n, b % n);
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32), ());
        }
    }
    CsrGraph::from_graph(&g)
}

fn demand_models() -> [DemandModel; 3] {
    [
        DemandModel::Uniform,
        DemandModel::Gravity {
            distance_exponent: 1.0,
        },
        DemandModel::RankBiased { exponent: 1.0 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Conservation: the flows a matrix emits carry exactly its row
    /// sums — per source and in total (twice the unordered-pair total,
    /// which itself matches the configured traffic whenever any demand
    /// is positive).
    #[test]
    fn demand_flows_conserve_row_and_total_sums(
        n in 2usize..20,
        pairs in proptest::collection::vec((0usize..20, 0usize..20), 1..40),
        total in 1.0f64..10_000.0,
        jitter in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let csr = demand_fixture(n, &pairs);
        for model in demand_models() {
            let dm = DemandMatrix::build(&csr, None, &DemandConfig {
                model,
                total_traffic: total,
                mass_jitter: jitter as f64 * 0.4,
                seed,
                ..DemandConfig::default()
            });
            let flows = dm.flows();
            for i in 0..n {
                let emitted: f64 = flows
                    .iter()
                    .filter(|f| f.src.index() == i)
                    .map(|f| f.amount)
                    .sum();
                let row = dm.row_sum(i);
                prop_assert!(
                    (emitted - row).abs() <= 1e-9 * row.max(1.0),
                    "row {} emitted {} vs sum {} ({:?})", i, emitted, row, model
                );
            }
            let offered: f64 = flows.iter().map(|f| f.amount).sum();
            let matrix_total = dm.total();
            prop_assert!((offered - 2.0 * matrix_total).abs() <= 1e-9 * matrix_total.max(1.0));
            if matrix_total > 0.0 {
                prop_assert!(
                    (matrix_total - total).abs() <= 1e-9 * total,
                    "total {} vs configured {} ({:?})", matrix_total, total, model
                );
            }
        }
    }

    /// Symmetry and zero self-demand: `demand(i, j)` and `demand(j, i)`
    /// are bit-identical (the undirected gravity model) and the diagonal
    /// is exactly zero.
    #[test]
    fn demand_matrices_are_symmetric_with_zero_diagonal(
        n in 2usize..20,
        pairs in proptest::collection::vec((0usize..20, 0usize..20), 1..40),
        jitter in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let csr = demand_fixture(n, &pairs);
        for model in demand_models() {
            let dm = DemandMatrix::build(&csr, None, &DemandConfig {
                model,
                mass_jitter: jitter as f64 * 0.4,
                seed,
                ..DemandConfig::default()
            });
            for i in 0..n {
                prop_assert_eq!(dm.demand(i, i), 0.0);
                for j in 0..n {
                    prop_assert_eq!(
                        dm.demand(i, j).to_bits(),
                        dm.demand(j, i).to_bits(),
                        "asymmetric at ({}, {}) under {:?}", i, j, model
                    );
                }
            }
        }
    }

    /// Determinism: a fixed seed regenerates the matrix byte-for-byte;
    /// with jitter enabled, a different seed produces different masses.
    #[test]
    fn demand_matrices_are_seed_deterministic(
        n in 2usize..20,
        pairs in proptest::collection::vec((0usize..20, 0usize..20), 1..40),
        seed in 0u64..1_000_000,
    ) {
        let csr = demand_fixture(n, &pairs);
        for model in demand_models() {
            let cfg = DemandConfig {
                model,
                mass_jitter: 0.4,
                seed,
                ..DemandConfig::default()
            };
            let a = DemandMatrix::build(&csr, None, &cfg);
            let b = DemandMatrix::build(&csr, None, &cfg);
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(a.demand(i, j).to_bits(), b.demand(i, j).to_bits());
                }
            }
            let c = DemandMatrix::build(&csr, None, &DemandConfig {
                seed: seed.wrapping_add(1),
                ..cfg
            });
            // Masses differ somewhere whenever any node has positive mass
            // (jitter redraws per node).
            if (0..n).any(|v| a.mass(v) > 0.0) {
                prop_assert!(
                    (0..n).any(|v| a.mass(v).to_bits() != c.mass(v).to_bits()),
                    "seed change left every mass identical ({:?})", model
                );
            }
        }
    }
}

/// Integer-valued dense demand for the capacitated properties: exact
/// f64 sums in any association order, zeros included.
struct CascadeDemand {
    n: usize,
}

impl OdDemand for CascadeDemand {
    fn node_count(&self) -> usize {
        self.n
    }
    fn demand(&self, src: usize, dst: usize) -> f64 {
        if src == dst {
            0.0
        } else {
            ((src * 7 + dst * 13) % 5) as f64
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// The cascade's structural guarantees hold for *all* parameters:
    /// it reaches a fixed point in at most |E| failing rounds plus the
    /// fixed point itself, surviving capacity never increases, every
    /// round conserves the offered demand exactly (routed + stranded ==
    /// offered, bit for bit on integer demands), and the final alive
    /// mask matches the recorded capacity and failure counts.
    #[test]
    fn cascade_terminates_conserves_and_sheds_monotonically(
        n in 2usize..16,
        pairs in proptest::collection::vec((0usize..16, 0usize..16), 1..40),
        cap_scale in 0.5f64..40.0,
        threads in 1usize..5,
    ) {
        use hotgen::sim::cascade::{cascade, CascadeConfig};
        let csr = demand_fixture(n, &pairs);
        let dem = CascadeDemand { n };
        let caps: Vec<f64> = (0..csr.edge_count())
            .map(|e| cap_scale * ((e % 5) + 1) as f64)
            .collect();
        let out = cascade(&csr, &dem, &caps, &CascadeConfig::default(), threads);
        prop_assert!(out.converged, "default max_rounds never binds");
        prop_assert!(
            out.rounds.len() <= csr.edge_count() + 1,
            "terminates in <= |E| failing rounds + the fixed point"
        );
        let offered: f64 = (0..n)
            .map(|s| (0..n).map(|d| dem.demand(s, d)).sum::<f64>())
            .sum();
        let mut prev_cap = f64::INFINITY;
        let mut failed_sum = 0;
        for r in &out.rounds {
            prop_assert_eq!(
                (r.routed_traffic + r.stranded_traffic).to_bits(),
                offered.to_bits(),
                "round {} conserves the offered demand", r.round
            );
            prop_assert!(r.surviving_capacity <= prev_cap, "capacity never recovers");
            prev_cap = r.surviving_capacity;
            failed_sum += r.failed;
            prop_assert_eq!(failed_sum, r.failed_total);
        }
        let last = out.final_round();
        prop_assert_eq!(last.failed, 0, "the fixed point fails nothing");
        let alive_cap: f64 = out
            .alive
            .iter()
            .zip(&caps)
            .filter(|&(&a, _)| a)
            .map(|(_, &c)| c)
            .sum();
        prop_assert_eq!(alive_cap.to_bits(), last.surviving_capacity.to_bits());
        prop_assert_eq!(
            out.alive.iter().filter(|&&a| !a).count(),
            last.failed_total
        );
    }

    /// The TE loop's accept-only-if-strictly-better rule makes its
    /// max-utilization trajectory strictly decreasing after the
    /// baseline entry, for all graphs, capacities, and thread counts —
    /// and it never tries more candidates than its round budget.
    #[test]
    fn te_trajectory_is_strictly_monotone(
        n in 2usize..14,
        pairs in proptest::collection::vec((0usize..14, 0usize..14), 1..30),
        cap_scale in 0.5f64..40.0,
        threads in 1usize..5,
    ) {
        use hotgen::sim::te::{tune_weights, TeConfig};
        let csr = demand_fixture(n, &pairs);
        let dem = CascadeDemand { n };
        let caps: Vec<f64> = (0..csr.edge_count())
            .map(|e| cap_scale * ((e % 4) + 1) as f64)
            .collect();
        let cfg = TeConfig { max_rounds: 5, ..TeConfig::default() };
        let out = tune_weights(&csr, &dem, &caps, &cfg, threads);
        prop_assert!(!out.trajectory.is_empty());
        prop_assert!(out.trajectory.len() <= cfg.max_rounds + 1);
        for w in out.trajectory.windows(2) {
            prop_assert!(w[1] < w[0], "strictly decreasing: {:?}", out.trajectory);
        }
        prop_assert!(out.final_max_util() <= out.initial_max_util());
        prop_assert!(out.rounds_tried <= cfg.max_rounds);
        prop_assert!(out.weights.iter().all(|&w| w > 0.0 && w <= 1.0));
    }
}

/// A tie-heavy weighted multigraph from proptest edge pairs: integer
/// weights in {0..3} manufacture many equal-cost paths (the hard case
/// for bit-for-bit agreement between shortest-path engines) and keep
/// zero-weight links in play, which `shortest_path::dijkstra` accepts.
fn weighted_fixture(n: usize, pairs: &[(usize, usize)]) -> Graph<(), f64> {
    let edges: Vec<(usize, usize, f64)> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| (a % n, b % n, ((a * 7 + b * 11 + i) % 4) as f64))
        .filter(|&(a, b, _)| a != b)
        .collect();
    Graph::from_edges(n, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batched CSR probe engine is a drop-in for the per-vantage
    /// reference: identical masks and coverage bits on arbitrary
    /// weighted graphs, destination subsets (including out-of-range
    /// ids, which both sides skip), and at every thread count.
    #[test]
    fn probe_engine_matches_infer_map_reference(
        n in 2usize..40,
        pairs in proptest::collection::vec((0usize..40, 0usize..40), 1..120),
        k in 1usize..8,
        dest_mode in 0usize..3,
        threads in 1usize..5,
    ) {
        use hotgen::sim::probe::infer_map_batched;
        use hotgen::sim::traceroute::{infer_map, strided_vantages};
        let g = weighted_fixture(n, &pairs);
        let vantages = strided_vantages(&g, k);
        let subset: Vec<NodeId>;
        let destinations: Option<&[NodeId]> = match dest_mode {
            0 => None,
            1 => {
                subset = (0..n).step_by(3).map(|v| NodeId(v as u32)).collect();
                Some(&subset)
            }
            _ => {
                // Out-of-range destinations must be skipped, not panic.
                subset = (0..n + 4).step_by(2).map(|v| NodeId(v as u32)).collect();
                Some(&subset)
            }
        };
        let reference = infer_map(&g, &vantages, destinations, |&w| w);
        let batched = infer_map_batched(&g, &vantages, destinations, |&w| w, threads).map;
        prop_assert_eq!(&batched.node_seen, &reference.node_seen);
        prop_assert_eq!(&batched.edge_seen, &reference.edge_seen);
        prop_assert_eq!(
            batched.node_coverage.to_bits(),
            reference.node_coverage.to_bits()
        );
        prop_assert_eq!(
            batched.edge_coverage.to_bits(),
            reference.edge_coverage.to_bits()
        );
    }

    /// Regression (promoted from a one-off review scratch test): probe
    /// inference on *sparse* graphs — where most nodes are isolated, so
    /// the strided vantage set lands on degree-0 routers — with
    /// destination lists that run past the node range. The batched
    /// engine must agree with the per-vantage reference on the full
    /// map, and neither side may panic on the out-of-range ids.
    #[test]
    fn probe_inference_handles_isolated_vantages_and_oob_destinations(
        n in 4usize..48,
        pairs in proptest::collection::vec((0usize..48, 0usize..48), 1..5),
        k in 2usize..9,
        overrun in 1usize..6,
        threads in 1usize..5,
    ) {
        use hotgen::sim::probe::infer_map_batched;
        use hotgen::sim::traceroute::{infer_map, strided_vantages};
        // 1..4 edges on up to 48 nodes: almost every vantage is isolated.
        let g = weighted_fixture(n, &pairs);
        let vantages = strided_vantages(&g, k);
        let dests: Vec<NodeId> = (0..n + overrun).step_by(3).map(|v| NodeId(v as u32)).collect();
        let reference = infer_map(&g, &vantages, Some(&dests), |&w| w);
        let batched = infer_map_batched(&g, &vantages, Some(&dests), |&w| w, threads).map;
        prop_assert_eq!(&batched.node_seen, &reference.node_seen, "node masks diverge");
        prop_assert_eq!(&batched.edge_seen, &reference.edge_seen, "edge masks diverge");
        prop_assert_eq!(
            batched.node_coverage.to_bits(),
            reference.node_coverage.to_bits()
        );
        prop_assert_eq!(
            batched.edge_coverage.to_bits(),
            reference.edge_coverage.to_bits()
        );
    }

    /// Campaign maps are subgraphs of the truth (every observed link
    /// has both endpoints observed, every in-range vantage observes
    /// itself) and growing the vantage set only ever grows the map.
    #[test]
    fn probe_maps_are_monotone_subgraphs(
        n in 5usize..60,
        m in 1usize..4,
        seed in 0u64..1_000_000,
        k in 1usize..10,
        threads in 1usize..5,
    ) {
        use hotgen::sim::probe::{run_campaign, ProbeCampaign};
        use hotgen::sim::traceroute::strided_vantages;
        let g = ba::generate(n, m, &mut StdRng::seed_from_u64(seed));
        let csr = CsrGraph::from_graph(&g);
        let vantages = strided_vantages(&g, k);
        let mut prev_edges: Option<Vec<bool>> = None;
        for j in 1..=vantages.len() {
            let out = run_campaign(
                &csr,
                &ProbeCampaign {
                    vantages: &vantages[..j],
                    destinations: None,
                    link_latency: None,
                },
                threads,
            );
            for (e, a, b, _) in g.edges() {
                if out.map.edge_seen[e.index()] {
                    prop_assert!(out.map.node_seen[a.index()]);
                    prop_assert!(out.map.node_seen[b.index()]);
                }
            }
            for v in &vantages[..j] {
                prop_assert!(out.map.node_seen[v.index()]);
            }
            prop_assert_eq!(out.stats.probes_sent, (j * n) as u64);
            prop_assert!(out.stats.probes_completed <= out.stats.probes_sent);
            if let Some(prev) = &prev_edges {
                for (e, (was, is)) in prev.iter().zip(&out.map.edge_seen).enumerate() {
                    prop_assert!(
                        !was || *is,
                        "edge {} seen with {} vantages but not {}", e, j - 1, j
                    );
                }
            }
            prev_edges = Some(out.map.edge_seen);
        }
    }
}

/// A growth-only mutation schedule for the epoch-API properties: per
/// epoch, a few arrivals (each wired to an existing node) plus a few
/// reinforcement edges between existing nodes, all derived from the
/// proptest-drawn pair list.
fn run_epoch_schedule(
    seed_nodes: usize,
    epochs: &[Vec<(usize, usize)>],
    mut per_epoch: impl FnMut(&mut hotgen::graph::epoch::EpochGraph<(), ()>),
) {
    use hotgen::graph::epoch::EpochGraph;
    let mut seed: Graph<(), ()> = Graph::new();
    for _ in 0..seed_nodes {
        seed.add_node(());
    }
    for i in 1..seed_nodes {
        seed.add_edge(NodeId((i - 1) as u32), NodeId(i as u32), ());
    }
    let mut g = EpochGraph::new(seed);
    for ops in epochs {
        for &(a, b) in ops {
            if a % 3 == 0 {
                // An arrival: new node wired to an existing one.
                let t = NodeId((b % g.node_count()) as u32);
                let v = g.add_node(());
                g.add_edge(t, v, ());
            } else {
                // Reinforcement between existing nodes.
                let x = NodeId((a % g.node_count()) as u32);
                let y = NodeId((b % g.node_count()) as u32);
                if x != y {
                    g.add_edge(x, y, ());
                }
            }
        }
        g.commit();
        per_epoch(&mut g);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Growth-only schedules only grow: committed node/edge counts are
    /// monotone non-decreasing, the epoch counter ticks once per
    /// commit, and the committed view always matches a from-scratch
    /// rebuild of the live graph.
    #[test]
    fn epoch_counts_are_monotone_under_growth(
        seed_nodes in 2usize..12,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0usize..64), 0..12),
            1..8,
        ),
    ) {
        let mut prev = (0usize, 0usize, 0u64);
        let mut first = true;
        run_epoch_schedule(seed_nodes, &epochs, |g| {
            assert!(!g.is_dirty(), "commit clears the dirty set");
            let now = (g.committed_node_count(), g.committed_edge_count(), g.epoch());
            assert_eq!(now.0, g.node_count());
            assert_eq!(now.1, g.edge_count());
            if !first {
                assert!(now.0 >= prev.0, "node count shrank");
                assert!(now.1 >= prev.1, "edge count shrank");
                assert_eq!(now.2, prev.2 + 1, "epoch must tick once per commit");
            }
            assert_eq!(g.csr(), &CsrGraph::from_graph(g.graph()));
            first = false;
            prev = now;
        });
    }

    /// The live union-find agrees with BFS reachability after every
    /// epoch: same component count, and `connected(a, b)` answers
    /// exactly like component labels from a BFS sweep.
    #[test]
    fn epoch_connectivity_matches_bfs_reachability(
        seed_nodes in 2usize..12,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0usize..64), 0..12),
            1..8,
        ),
    ) {
        use hotgen::graph::traversal::connected_components;
        run_epoch_schedule(seed_nodes, &epochs, |g| {
            let labels = connected_components(g.graph());
            let bfs_comps = labels.iter().collect::<std::collections::HashSet<_>>().len();
            assert_eq!(g.components(), bfs_comps, "union-find vs BFS component count");
            let n = g.node_count();
            for a in (0..n).step_by(3) {
                for b in (0..n).step_by(5) {
                    assert_eq!(
                        g.connected(NodeId(a as u32), NodeId(b as u32)),
                        labels[a] == labels[b],
                        "connected({}, {}) disagrees with BFS", a, b
                    );
                }
            }
        });
    }

    /// Mid-evolution state survives a binary snapshot round-trip: at
    /// every epoch, the committed CSR serialized through
    /// `Snapshot::to_bytes`/`from_bytes` (with a node column carrying
    /// the epoch stamp) comes back bit-identical — so an evolution can
    /// be checkpointed and resumed from disk at any epoch boundary.
    #[test]
    fn epoch_state_roundtrips_through_snapshots(
        seed_nodes in 2usize..10,
        epochs in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0usize..64), 0..10),
            1..6,
        ),
    ) {
        use hotgen::graph::io::Snapshot;
        run_epoch_schedule(seed_nodes, &epochs, |g| {
            let mut snap = Snapshot::new(g.csr().clone());
            snap.node_u32.push((
                "epoch".to_string(),
                vec![g.epoch() as u32; g.node_count()],
            ));
            let restored = Snapshot::from_bytes(&snap.to_bytes())
                .expect("round-trip of a freshly written snapshot");
            assert_eq!(&restored, &snap, "snapshot round-trip must be lossless");
            assert_eq!(&restored.csr, g.csr());
        });
    }
}
